package stream

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"probtopk/internal/core"
	"probtopk/internal/fixtures"
	"probtopk/internal/pmf"
	"probtopk/internal/typical"
	"probtopk/internal/uncertain"
	"probtopk/internal/worlds"
)

func exactParams() core.Params {
	return core.Params{K: 1, TrackVectors: true} // K overridden by TopK
}

func TestWindowBasics(t *testing.T) {
	if _, err := NewWindow(0); err == nil {
		t.Fatal("capacity 0 should error")
	}
	w, err := NewWindow(3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Capacity() != 3 || w.Len() != 0 {
		t.Fatal("fresh window wrong")
	}
	if _, err := w.Table(); err != ErrEmptyWindow {
		t.Fatalf("err = %v", err)
	}
	for i := 0; i < 3; i++ {
		ev, err := w.Push(uncertain.Tuple{ID: "a", Score: float64(i), Prob: 0.5})
		if err != nil || ev != nil {
			t.Fatalf("push %d: %v %v", i, ev, err)
		}
	}
	ev, err := w.Push(uncertain.Tuple{ID: "new", Score: 9, Prob: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.Score != 0 {
		t.Fatalf("evicted = %+v, want the oldest (score 0)", ev)
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d", w.Len())
	}
	snap := w.Snapshot()
	if snap[0].Score != 9 || snap[2].Score != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestPushValidation(t *testing.T) {
	w, _ := NewWindow(2)
	if _, err := w.Push(uncertain.Tuple{ID: "bad", Score: 1, Prob: 0}); err == nil {
		t.Fatal("invalid probability should error")
	}
	if _, err := w.Push(uncertain.Tuple{ID: "bad", Score: math.NaN(), Prob: 0.5}); err == nil {
		t.Fatal("NaN score should error")
	}
}

// TestWindowMatchesBatch: a windowed query equals the batch computation over
// the same tuples, verified against the possible-worlds oracle.
func TestWindowMatchesBatch(t *testing.T) {
	w, _ := NewWindow(7)
	for _, tp := range fixtures.Soldier().Tuples() {
		if _, err := w.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	res, err := w.TopK(2, exactParams())
	if err != nil {
		t.Fatal(err)
	}
	exact, err := worlds.ExactDistribution(res.Prepared, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.Len() != exact.Len() {
		t.Fatalf("lines = %d vs %d", res.Dist.Len(), exact.Len())
	}
	if math.Abs(res.Dist.Mean()-fixtures.SoldierExpectedScore) > 1e-9 {
		t.Fatalf("mean = %v", res.Dist.Mean())
	}
	if res.WindowLen != 7 {
		t.Fatalf("window len = %d", res.WindowLen)
	}
}

// TestEvictionChangesDistribution: after the top tuple slides out, the
// distribution must reflect only the remaining window.
func TestEvictionChangesDistribution(t *testing.T) {
	w, _ := NewWindow(2)
	w.Push(uncertain.Tuple{ID: "big", Score: 100, Prob: 1})
	w.Push(uncertain.Tuple{ID: "mid", Score: 50, Prob: 1})
	res, err := w.TopK(1, exactParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.Mean() != 100 {
		t.Fatalf("mean = %v", res.Dist.Mean())
	}
	w.Push(uncertain.Tuple{ID: "small", Score: 10, Prob: 1}) // evicts "big"
	res, err = w.TopK(1, exactParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist.Mean() != 50 {
		t.Fatalf("after eviction mean = %v", res.Dist.Mean())
	}
}

// TestGroupMassReleasedOnEviction: an ME group overfull for the window
// becomes valid again once a member is evicted; while both members plus an
// overflow are in the window the query reports the invalid table.
func TestGroupMassReleasedOnEviction(t *testing.T) {
	w, _ := NewWindow(3)
	w.Push(uncertain.Tuple{ID: "g1", Group: "g", Score: 10, Prob: 0.7})
	w.Push(uncertain.Tuple{ID: "g2", Group: "g", Score: 20, Prob: 0.6})
	if _, err := w.TopK(1, exactParams()); err == nil {
		t.Fatal("overfull group should fail the windowed query")
	}
	w.Push(uncertain.Tuple{ID: "x", Score: 5, Prob: 0.5})
	w.Push(uncertain.Tuple{ID: "y", Score: 6, Prob: 0.5}) // evicts g1
	res, err := w.TopK(1, exactParams())
	if err != nil {
		t.Fatal(err)
	}
	// Window: g2 (0.6), x, y — top-1 = 20 with prob 0.6.
	if math.Abs(res.Dist.TailProb(19)-0.6) > 1e-12 {
		t.Fatalf("Pr(top-1 = 20) = %v", res.Dist.TailProb(19))
	}
}

// TestSlidingCrossCheck: at every step of a random stream, the windowed
// distribution equals the oracle over the current window contents.
func TestSlidingCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	w, _ := NewWindow(6)
	for step := 0; step < 60; step++ {
		tp := uncertain.Tuple{
			ID:    "t",
			Score: float64(r.Intn(30)),
			Prob:  0.1 + 0.8*r.Float64(),
		}
		if _, err := w.Push(tp); err != nil {
			t.Fatal(err)
		}
		k := 1 + r.Intn(3)
		res, err := w.TopK(k, exactParams())
		if err != nil {
			t.Fatal(err)
		}
		exact, err := worlds.ExactDistribution(res.Prepared, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist.Len() != exact.Len() {
			t.Fatalf("step %d: %d lines vs %d", step, res.Dist.Len(), exact.Len())
		}
		for i := 0; i < exact.Len(); i++ {
			if math.Abs(res.Dist.Line(i).Prob-exact.Line(i).Prob) > 1e-9 {
				t.Fatalf("step %d line %d: %v vs %v", step, i, res.Dist.Line(i), exact.Line(i))
			}
		}
	}
}

// TestIncrementalMatchesFullPrepare: property-style cross-check of the
// window's dynamic-index maintenance (polylog mutations, suffix
// materialization, memoized reuse) against preparing the materialised window
// table from scratch at every step. Distributions and c-Typical-Topk answers
// must be bit-identical, and the prepared structures must agree position by
// position.
func TestIncrementalMatchesFullPrepare(t *testing.T) {
	for _, tc := range []struct {
		name      string
		groupFrac float64
	}{
		{"independent", 0},
		{"mixed-groups", 0.4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(99))
			w, _ := NewWindow(8)
			for step := 0; step < 120; step++ {
				tp := uncertain.Tuple{
					ID:    "t",
					Score: float64(r.Intn(25)),
					Prob:  0.05 + 0.2*r.Float64(),
				}
				if r.Float64() < tc.groupFrac {
					tp.Group = "g" // bounded probs keep the in-window mass ≤ 1 only sometimes
				}
				if _, err := w.Push(tp); err != nil {
					t.Fatal(err)
				}
				tab, err := w.Table()
				if err != nil {
					// Overfull in-window group: the incremental path must
					// agree that the window is invalid.
					if _, werr := w.Prepared(); werr == nil {
						t.Fatalf("step %d: full prepare failed (%v) but incremental succeeded", step, err)
					}
					continue
				}
				want, err := uncertain.Prepare(tab)
				if err != nil {
					t.Fatal(err)
				}
				got, err := w.Prepared()
				if err != nil {
					t.Fatalf("step %d: incremental prepare: %v", step, err)
				}
				if got.Len() != want.Len() || got.NumGroups() != want.NumGroups() {
					t.Fatalf("step %d: prepared %v vs %v", step, got, want)
				}
				for i := 0; i < want.Len(); i++ {
					g, v := got.Tuples[i], want.Tuples[i]
					if g.Score != v.Score || g.Prob != v.Prob || g.Lead != v.Lead ||
						g.Group != v.Group {
						t.Fatalf("step %d pos %d: %+v vs %+v", step, i, g, v)
					}
				}
				k := 1 + r.Intn(3)
				res, err := w.TopK(k, exactParams())
				if err != nil {
					t.Fatal(err)
				}
				full, err := core.Distribution(want, core.Params{K: k, TrackVectors: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Dist.Len() != full.Dist.Len() {
					t.Fatalf("step %d: %d lines vs %d", step, res.Dist.Len(), full.Dist.Len())
				}
				for i := 0; i < full.Dist.Len(); i++ {
					a, b := res.Dist.Line(i), full.Dist.Line(i)
					if a.Score != b.Score || a.Prob != b.Prob || a.VecProb != b.VecProb {
						t.Fatalf("step %d line %d: %+v vs %+v", step, i, a, b)
					}
				}
				if res.Dist.Len() >= 2 {
					ta, err := typical.Select(res.Dist, 2)
					if err != nil {
						t.Fatal(err)
					}
					tb, err := typical.Select(full.Dist, 2)
					if err != nil {
						t.Fatal(err)
					}
					if ta.Cost != tb.Cost || len(ta.Scores) != len(tb.Scores) {
						t.Fatalf("step %d: typical answers differ: %+v vs %+v", step, ta, tb)
					}
					for i := range ta.Scores {
						if ta.Scores[i] != tb.Scores[i] {
							t.Fatalf("step %d: typical scores differ: %v vs %v", step, ta.Scores, tb.Scores)
						}
					}
				}
			}
			stats := w.Stats()
			// The dynamic index never needs a from-scratch rebuild after the
			// first successful materialization — not even under ME-group
			// churn, which used to force one.
			if stats.FullRebuilds != 1 {
				t.Fatalf("%d full rebuilds, want only the first (stats %+v)", stats.FullRebuilds, stats)
			}
			if stats.SuffixRebuilds == 0 {
				t.Fatalf("never took the suffix path: %+v", stats)
			}
			if stats.PolylogMutations == 0 {
				t.Fatalf("mutations not counted: %+v", stats)
			}
		})
	}
}

// TestPreparedCachedAcrossQueries: with no pushes in between, repeated
// queries reuse the prepared state outright.
func TestPreparedCachedAcrossQueries(t *testing.T) {
	w, _ := NewWindow(5)
	for i := 0; i < 5; i++ {
		w.Push(uncertain.Tuple{ID: "t", Score: float64(i), Prob: 0.5})
	}
	p1, err := w.Prepared()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w.Prepared()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("unchanged window rebuilt its prepared state")
	}
	if s := w.Stats(); s.CachedQueries != 1 {
		t.Fatalf("stats = %+v, want 1 cached query", s)
	}
	w.Push(uncertain.Tuple{ID: "t", Score: 9, Prob: 0.5})
	p3, err := w.Prepared()
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("push did not invalidate the prepared state")
	}
}

func TestSeries(t *testing.T) {
	w, _ := NewWindow(4)
	var stream []uncertain.Tuple
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		stream = append(stream, uncertain.Tuple{
			ID: "t", Score: 10 + r.Float64()*10, Prob: 0.3 + 0.6*r.Float64(),
		})
	}
	var values []float64
	var skipped int
	err := Series(w, stream, 2, exactParams(),
		func(d *pmf.Dist) float64 { return d.Mean() },
		func(step int, v float64, ok bool) {
			if !ok {
				skipped++
				return
			}
			values = append(values, v)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(values)+skipped != 20 {
		t.Fatalf("observed %d + %d skipped", len(values), skipped)
	}
	for _, v := range values {
		if v < 20 || v > 40 {
			t.Fatalf("windowed top-2 mean %v outside plausible range", v)
		}
	}
}

// TestFreezeMemoized: an unchanged window hands out the same snapshot (so
// identity-keyed caches keep hitting); a Push mints a fresh identity, and
// old snapshots stay frozen at their contents.
func TestFreezeMemoized(t *testing.T) {
	w, err := NewWindow(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := w.Push(uncertain.Tuple{ID: fmt.Sprintf("t%d", i), Score: float64(i), Prob: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	s1, err := w.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := w.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("unchanged window minted a new snapshot")
	}
	if _, err := w.Push(uncertain.Tuple{ID: "new", Score: 99, Prob: 0.9}); err != nil {
		t.Fatal(err)
	}
	s3, err := w.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 || s3.ID() == s1.ID() {
		t.Fatal("push did not mint a fresh snapshot identity")
	}
	if s1.Len() != 4 || s3.Len() != 5 || s3.Tuple(0).ID != "new" {
		t.Fatalf("frozen contents wrong: s1 len %d, s3 %+v", s1.Len(), s3.Tuples()[:1])
	}
}

// TestFreezeCarriesIndexView: Freeze attaches the window's dynamic-index
// view to the published snapshot, so downstream consumers (the engine) can
// materialize the Prepared form from the index — and when the window was
// already queried, they share the window's own memoized Prepared.
func TestFreezeCarriesIndexView(t *testing.T) {
	w, _ := NewWindow(8)
	for i := 0; i < 6; i++ {
		if _, err := w.Push(uncertain.Tuple{ID: fmt.Sprintf("t%d", i), Score: float64(i % 3), Prob: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	prep, err := w.Prepared()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := w.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	v := snap.IndexView()
	if v == nil {
		t.Fatal("frozen snapshot carries no index view")
	}
	if v.Len() != snap.Len() {
		t.Fatalf("view len %d != snapshot len %d", v.Len(), snap.Len())
	}
	vp, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if vp != prep {
		t.Fatal("materialized-window view should share the window's memoized Prepared")
	}
	// The view and the snapshot describe the same contents even though the
	// owner keeps mutating after the freeze.
	for i := 0; i < 20; i++ {
		if _, err := w.Push(uncertain.Tuple{ID: "later", Score: 99, Prob: 0.9}); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := snap.Prepare()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != vp.Len() {
		t.Fatalf("view len %d != snapshot prepare len %d", vp.Len(), sp.Len())
	}
	for i := range sp.Tuples {
		a, b := sp.Tuples[i], vp.Tuples[i]
		if a.ID != b.ID || a.Score != b.Score || a.Prob != b.Prob || a.Group != b.Group || a.Lead != b.Lead {
			t.Fatalf("position %d: view %+v vs snapshot %+v", i, b, a)
		}
	}
}
