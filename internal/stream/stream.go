// Package stream extends the paper's semantics to the uncertain data-stream
// setting its related work points at (Jin et al., "Sliding-Window Top-k
// Queries on Uncertain Streams", VLDB 2008): a window of the most recent W
// uncertain tuples is maintained, and the top-k score distribution (and
// c-Typical-Topk answers) of the window contents can be queried at any time.
//
// The window keeps its tuples in a rank-ordered index so a query costs one
// run of the paper's main dynamic program over the window — insertion and
// eviction are O(log W + W) (slice insert), far cheaper than the DP itself.
// ME groups are supported with the window-native semantics that a group's
// constraint binds among the members currently inside the window; evicted
// members simply drop out (their probability mass leaves the group).
package stream

import (
	"errors"
	"fmt"
	"sort"

	"probtopk/internal/core"
	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// Window is a sliding window over an uncertain tuple stream. It is not safe
// for concurrent use.
type Window struct {
	capacity int
	seq      int64
	// tuples in arrival order (oldest first).
	arrival []entry
}

type entry struct {
	seq   int64
	tuple uncertain.Tuple
}

// NewWindow creates a sliding window holding the most recent capacity
// tuples.
func NewWindow(capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stream: window capacity must be ≥ 1, got %d", capacity)
	}
	return &Window{capacity: capacity}, nil
}

// Len returns the number of tuples currently in the window.
func (w *Window) Len() int { return len(w.arrival) }

// Capacity returns the window size.
func (w *Window) Capacity() int { return w.capacity }

// Push appends a tuple to the stream, evicting the oldest tuple when the
// window is full. It returns the evicted tuple, if any. The tuple is
// validated on entry (probability in (0, 1], finite score); group-mass
// validation happens against the *current window contents* at query time,
// since a group's in-window mass changes as members are evicted.
func (w *Window) Push(t uncertain.Tuple) (evicted *uncertain.Tuple, err error) {
	probe := uncertain.NewTable().Add(uncertain.Tuple{ID: t.ID, Score: t.Score, Prob: t.Prob})
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	w.seq++
	w.arrival = append(w.arrival, entry{seq: w.seq, tuple: t})
	if len(w.arrival) > w.capacity {
		old := w.arrival[0].tuple
		copy(w.arrival, w.arrival[1:])
		w.arrival = w.arrival[:len(w.arrival)-1]
		return &old, nil
	}
	return nil, nil
}

// ErrEmptyWindow is returned when a query runs against an empty window.
var ErrEmptyWindow = errors.New("stream: empty window")

// Table materialises the current window contents as an uncertain table in
// arrival order.
func (w *Window) Table() (*uncertain.Table, error) {
	if len(w.arrival) == 0 {
		return nil, ErrEmptyWindow
	}
	t := uncertain.NewTable()
	for _, e := range w.arrival {
		t.Add(e.tuple)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("stream: window contents invalid: %w", err)
	}
	return t, nil
}

// Result is one windowed query answer.
type Result struct {
	// Dist is the top-k score distribution of the window contents.
	Dist *pmf.Dist
	// Prepared gives access to the rank-ordered window for translating the
	// distribution's vector positions into tuple IDs.
	Prepared *uncertain.Prepared
	// WindowLen is the number of tuples that were in the window.
	WindowLen int
}

// TopK computes the top-k score distribution of the current window with the
// main algorithm under params (K is taken from the argument, overriding
// params.K).
func (w *Window) TopK(k int, params core.Params) (*Result, error) {
	tab, err := w.Table()
	if err != nil {
		return nil, err
	}
	prep, err := uncertain.Prepare(tab)
	if err != nil {
		return nil, err
	}
	params.K = k
	res, err := core.Distribution(prep, params)
	if err != nil {
		return nil, err
	}
	return &Result{Dist: res.Dist, Prepared: prep, WindowLen: tab.Len()}, nil
}

// Series runs a query after every arrival of stream and collects a chosen
// statistic of the window's top-k distribution — e.g. its mean or median —
// producing the time series a monitoring application would chart. Windows
// with fewer than k tuples yield NaN-free skips (the statistic is omitted
// and marked by ok=false in the callback).
func Series(window *Window, streamTuples []uncertain.Tuple, k int, params core.Params,
	stat func(*pmf.Dist) float64, observe func(step int, value float64, ok bool)) error {
	for i, t := range streamTuples {
		if _, err := window.Push(t); err != nil {
			return err
		}
		res, err := window.TopK(k, params)
		if err != nil {
			return err
		}
		if res.Dist.IsEmpty() {
			observe(i, 0, false)
			continue
		}
		observe(i, stat(res.Dist), true)
	}
	return nil
}

// Snapshot lists the window contents in rank (score, probability) order,
// useful for debugging and display.
func (w *Window) Snapshot() []uncertain.Tuple {
	out := make([]uncertain.Tuple, len(w.arrival))
	for i, e := range w.arrival {
		out[i] = e.tuple
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Prob > out[j].Prob
	})
	return out
}
