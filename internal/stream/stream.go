// Package stream extends the paper's semantics to the uncertain data-stream
// setting its related work points at (Jin et al., "Sliding-Window Top-k
// Queries on Uncertain Streams", VLDB 2008): a window of the most recent W
// uncertain tuples is maintained, and the top-k score distribution (and
// c-Typical-Topk answers) of the window contents can be queried at any time.
//
// The window maintains its prepared (rank-ordered, §3.4) state in a fully
// dynamic uncertain.Index: each Push inserts the new tuple and deletes the
// evicted one with O(log W) structural work, wherever in the rank order the
// change lands — there is no O(W) memmove and no ME-group full-rebuild
// fallback any more. The flat uncertain.Prepared form the DP consumes is
// materialized lazily at the next query, re-deriving only the rank suffix
// below the lowest position that changed (the index reuses PrepareSorted,
// the batch path, so the result is bit-identical to preparing the window
// contents from scratch). Repeated queries over an unchanged window reuse
// the memoized Prepared outright, so a query costs exactly one run of the
// paper's dynamic program, with pooled scratch.
//
// ME groups are supported with the window-native semantics that a group's
// constraint binds among the members currently inside the window; evicted
// members simply drop out (their probability mass leaves the group), and a
// group whose in-window mass exceeds 1 surfaces as an error at query time,
// healing as members slide out.
package stream

import (
	"errors"
	"fmt"

	"probtopk/internal/core"
	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// Window is a sliding window over an uncertain tuple stream. It is not safe
// for concurrent use.
type Window struct {
	capacity int
	// arrival holds the live tuples in arrival order, each with the
	// sequence number identifying it inside idx. It grows by append until
	// the window fills, then becomes a ring with the oldest tuple at head —
	// eviction must be O(1), not an O(W) shift, or it would dominate the
	// index's O(log W) structural work.
	arrival []entry
	head    int
	// idx maintains the canonical §3.4 rank order dynamically; it owns the
	// memoized Prepared and the rebuild counters.
	idx *uncertain.Index

	// frozen memoizes the snapshot published by Freeze; nil after any Push,
	// so an unchanged window keeps handing out one identity (and the engine
	// cache keeps hitting), mirroring Table.Snapshot's copy-on-write.
	frozen *uncertain.Snapshot
}

type entry struct {
	seq   uint64
	tuple uncertain.Tuple
}

// WindowStats counts the window's dynamic-index maintenance, for
// observability and tests of the incremental machinery. It is a rename of
// the index's own counters into the window's vocabulary.
type WindowStats struct {
	// CachedQueries is the number of queries that reused the memoized
	// Prepared without any rebuild (no pushes since the last query).
	CachedQueries int
	// SuffixRebuilds is the number of materializations that reused the
	// unchanged higher-ranked prefix of the previous Prepared.
	SuffixRebuilds int
	// FullRebuilds is the number of materializations from scratch (only the
	// first successful build — ME churn no longer forces one).
	FullRebuilds int
	// PolylogMutations is the number of index mutations (inserts and
	// evictions), each costing O(log W) structural work.
	PolylogMutations int
}

// NewWindow creates a sliding window holding the most recent capacity
// tuples.
func NewWindow(capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stream: window capacity must be ≥ 1, got %d", capacity)
	}
	return &Window{capacity: capacity, idx: uncertain.NewIndex()}, nil
}

// Len returns the number of tuples currently in the window.
func (w *Window) Len() int { return len(w.arrival) }

// Capacity returns the window size.
func (w *Window) Capacity() int { return w.capacity }

// Stats returns the prepared-state maintenance counters.
func (w *Window) Stats() WindowStats {
	st := w.idx.Stats()
	return WindowStats{
		CachedQueries:    int(st.MemoHits),
		SuffixRebuilds:   int(st.SuffixMaterializations),
		FullRebuilds:     int(st.FullMaterializations),
		PolylogMutations: int(st.Mutations),
	}
}

// Push appends a tuple to the stream, evicting the oldest tuple when the
// window is full. It returns the evicted tuple, if any. The tuple is
// validated on entry (probability in (0, 1], finite score); group-mass
// validation happens against the *current window contents* at query time,
// since a group's in-window mass changes as members are evicted.
func (w *Window) Push(t uncertain.Tuple) (evicted *uncertain.Tuple, err error) {
	seq, err := w.idx.Insert(t)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if len(w.arrival) == w.capacity {
		old := w.arrival[w.head]
		w.idx.Delete(old.seq)
		w.arrival[w.head] = entry{seq: seq, tuple: t}
		w.head = (w.head + 1) % w.capacity
		evicted = &old.tuple
	} else {
		w.arrival = append(w.arrival, entry{seq: seq, tuple: t})
	}
	w.frozen = nil
	return evicted, nil
}

// at returns the i-th live tuple in arrival order (0 = oldest).
func (w *Window) at(i int) entry { return w.arrival[(w.head+i)%len(w.arrival)] }

// ErrEmptyWindow is returned when a query runs against an empty window.
var ErrEmptyWindow = errors.New("stream: empty window")

// Table materialises the current window contents as an uncertain table in
// arrival order.
func (w *Window) Table() (*uncertain.Table, error) {
	if len(w.arrival) == 0 {
		return nil, ErrEmptyWindow
	}
	t := uncertain.NewTable()
	for i := 0; i < len(w.arrival); i++ {
		t.Add(w.at(i).tuple)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("stream: window contents invalid: %w", err)
	}
	return t, nil
}

// Prepared returns the prepared form of the current window contents,
// materialized from the dynamic index: clean state is returned as-is
// (the same *Prepared pointer, preserving its memoized unit decomposition),
// otherwise only the rank suffix below the lowest changed position is
// re-derived. Group-mass validation runs on every rebuild, so an overfull
// in-window group surfaces here.
func (w *Window) Prepared() (*uncertain.Prepared, error) {
	if len(w.arrival) == 0 {
		return nil, ErrEmptyWindow
	}
	prep, err := w.idx.Materialize()
	if err != nil {
		return nil, fmt.Errorf("stream: window contents invalid: %w", err)
	}
	return prep, nil
}

// Result is one windowed query answer.
type Result struct {
	// Dist is the top-k score distribution of the window contents.
	Dist *pmf.Dist
	// Prepared gives access to the rank-ordered window for translating the
	// distribution's vector positions into tuple IDs.
	Prepared *uncertain.Prepared
	// WindowLen is the number of tuples that were in the window.
	WindowLen int
	// ScanDepth is the number of window tuples the query examined under
	// Theorem 2 (at most WindowLen).
	ScanDepth int
}

// TopK computes the top-k score distribution of the current window with the
// main algorithm under params (K is taken from the argument, overriding
// params.K), reusing the incrementally maintained prepared state and pooled
// DP scratch.
func (w *Window) TopK(k int, params core.Params) (*Result, error) {
	prep, err := w.Prepared()
	if err != nil {
		return nil, err
	}
	params.K = k
	res, err := core.Distribution(prep, params)
	if err != nil {
		return nil, err
	}
	return &Result{Dist: res.Dist, Prepared: prep, WindowLen: len(w.arrival), ScanDepth: res.ScanDepth}, nil
}

// Series runs a query after every arrival of stream and collects a chosen
// statistic of the window's top-k distribution — e.g. its mean or median —
// producing the time series a monitoring application would chart. Windows
// with fewer than k tuples yield NaN-free skips (the statistic is omitted
// and marked by ok=false in the callback).
func Series(window *Window, streamTuples []uncertain.Tuple, k int, params core.Params,
	stat func(*pmf.Dist) float64, observe func(step int, value float64, ok bool)) error {
	for i, t := range streamTuples {
		if _, err := window.Push(t); err != nil {
			return err
		}
		res, err := window.TopK(k, params)
		if err != nil {
			return err
		}
		if res.Dist.IsEmpty() {
			observe(i, 0, false)
			continue
		}
		observe(i, stat(res.Dist), true)
	}
	return nil
}

// Snapshot lists the window contents in rank (score, probability) order,
// useful for debugging and display.
func (w *Window) Snapshot() []uncertain.Tuple { return w.idx.Tuples() }

// Freeze publishes the current window contents as an immutable
// uncertain.Snapshot (in rank order), with the window's frozen IndexView
// attached: the index's tree is persistent, so freezing is O(1) structural
// work plus one walk to list the tuples — no re-preparation — and an engine
// that later needs the Prepared form materializes it from the view (sharing
// the window's own memo when the window was already materialized).
//
// The window is single-owner, but the returned snapshot is not: it can be
// queried through an Engine from any goroutine — and cached under its
// identity — while the owner keeps pushing. An unchanged window returns the
// same snapshot on every call (so engine caches keep hitting); a Push clears
// the memo and the next Freeze mints a fresh identity. The frozen contents
// are validated, so an overfull in-window ME group surfaces here, like at
// query time.
func (w *Window) Freeze() (*uncertain.Snapshot, error) {
	if len(w.arrival) == 0 {
		return nil, ErrEmptyWindow
	}
	if w.frozen != nil {
		return w.frozen, nil
	}
	view := w.idx.Freeze()
	// Snapshot() already builds a private slice; hand it over outright.
	snap := uncertain.OwnSnapshot(w.Snapshot())
	if err := snap.Validate(); err != nil {
		return nil, fmt.Errorf("stream: window contents invalid: %w", err)
	}
	snap.SetIndexView(view)
	w.frozen = snap
	return snap, nil
}
