// Package stream extends the paper's semantics to the uncertain data-stream
// setting its related work points at (Jin et al., "Sliding-Window Top-k
// Queries on Uncertain Streams", VLDB 2008): a window of the most recent W
// uncertain tuples is maintained, and the top-k score distribution (and
// c-Typical-Topk answers) of the window contents can be queried at any time.
//
// The window maintains its prepared (rank-ordered, §3.4) state
// incrementally. Each Push binary-inserts the new tuple into the canonical
// order and removes the evicted one, both O(log W + W); the derived
// uncertain.Prepared structure is rebuilt lazily at the next query, and only
// from the first rank position that changed — the shared higher-ranked
// prefix is reused ("suffix re-prepare"). When a push or eviction changes
// ME-group membership the window conservatively falls back to a full
// (sort-free) rebuild. Repeated queries over an unchanged window reuse the
// cached Prepared outright, so a query costs exactly one run of the paper's
// dynamic program, with pooled scratch.
//
// ME groups are supported with the window-native semantics that a group's
// constraint binds among the members currently inside the window; evicted
// members simply drop out (their probability mass leaves the group), and a
// group whose in-window mass exceeds 1 surfaces as an error at query time,
// healing as members slide out.
package stream

import (
	"errors"
	"fmt"
	"sort"

	"probtopk/internal/core"
	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// Window is a sliding window over an uncertain tuple stream. It is not safe
// for concurrent use.
type Window struct {
	capacity int
	seq      int64
	// tuples in arrival order (oldest first).
	arrival []entry
	// the same tuples in canonical §3.4 rank order: descending (score,
	// probability), remaining ties by arrival. Maintained incrementally.
	ranked []entry

	// prep is the cached Prepared built from ranked; nil when never built or
	// after an ME-group membership change. dirtyFrom is the lowest rank
	// position touched since prep was built (-1 = clean); needFull forces a
	// full rebuild at the next query.
	prep      *uncertain.Prepared
	dirtyFrom int
	needFull  bool

	// frozen memoizes the snapshot published by Freeze; nil after any Push,
	// so an unchanged window keeps handing out one identity (and the engine
	// cache keeps hitting), mirroring Table.Snapshot's copy-on-write.
	frozen *uncertain.Snapshot

	// scratch buffer reused for the tuple slice handed to PrepareSorted.
	buf []uncertain.Tuple

	stats WindowStats
}

type entry struct {
	seq   int64
	tuple uncertain.Tuple
}

// WindowStats counts how queries obtained their prepared state, for
// observability and tests of the incremental maintenance.
type WindowStats struct {
	// CachedQueries is the number of queries that reused the cached
	// Prepared without any rebuild (no pushes since the last query).
	CachedQueries int
	// SuffixRebuilds is the number of rebuilds that reused the unchanged
	// higher-ranked prefix.
	SuffixRebuilds int
	// FullRebuilds is the number of rebuilds from scratch (first build, or
	// after ME-group membership changed).
	FullRebuilds int
}

// canonBefore reports whether a precedes b in the canonical prepared order:
// descending score, then descending probability, then arrival order. The
// sequence tie-break makes the order total and identical to Prepare's stable
// sort of the arrival-order table.
func canonBefore(a, b entry) bool {
	if a.tuple.Score != b.tuple.Score {
		return a.tuple.Score > b.tuple.Score
	}
	if a.tuple.Prob != b.tuple.Prob {
		return a.tuple.Prob > b.tuple.Prob
	}
	return a.seq < b.seq
}

// NewWindow creates a sliding window holding the most recent capacity
// tuples.
func NewWindow(capacity int) (*Window, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stream: window capacity must be ≥ 1, got %d", capacity)
	}
	return &Window{capacity: capacity, dirtyFrom: -1}, nil
}

// Len returns the number of tuples currently in the window.
func (w *Window) Len() int { return len(w.arrival) }

// Capacity returns the window size.
func (w *Window) Capacity() int { return w.capacity }

// Stats returns the prepared-state maintenance counters.
func (w *Window) Stats() WindowStats { return w.stats }

// markDirty records that rank positions at or beyond pos changed.
func (w *Window) markDirty(pos int) {
	if w.dirtyFrom < 0 || pos < w.dirtyFrom {
		w.dirtyFrom = pos
	}
}

// Push appends a tuple to the stream, evicting the oldest tuple when the
// window is full. It returns the evicted tuple, if any. The tuple is
// validated on entry (probability in (0, 1], finite score); group-mass
// validation happens against the *current window contents* at query time,
// since a group's in-window mass changes as members are evicted.
func (w *Window) Push(t uncertain.Tuple) (evicted *uncertain.Tuple, err error) {
	if err := uncertain.CheckTuple(t); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if len(w.arrival) == w.capacity {
		old := w.arrival[0]
		copy(w.arrival, w.arrival[1:])
		w.arrival = w.arrival[:len(w.arrival)-1]
		w.removeRanked(old)
		if old.tuple.Group != "" {
			w.needFull = true
		}
		evicted = &old.tuple
	}
	w.seq++
	e := entry{seq: w.seq, tuple: t}
	w.arrival = append(w.arrival, e)
	w.insertRanked(e)
	if t.Group != "" {
		w.needFull = true
	}
	w.frozen = nil
	return evicted, nil
}

// insertRanked binary-inserts e into the canonical order.
func (w *Window) insertRanked(e entry) {
	pos := sort.Search(len(w.ranked), func(i int) bool { return canonBefore(e, w.ranked[i]) })
	w.ranked = append(w.ranked, entry{})
	copy(w.ranked[pos+1:], w.ranked[pos:])
	w.ranked[pos] = e
	w.markDirty(pos)
}

// removeRanked removes the entry with e's sequence number from the canonical
// order.
func (w *Window) removeRanked(e entry) {
	pos := sort.Search(len(w.ranked), func(i int) bool { return !canonBefore(w.ranked[i], e) })
	for pos < len(w.ranked) && w.ranked[pos].seq != e.seq {
		pos++ // canonBefore is total, so this only skips float-equal twins
	}
	copy(w.ranked[pos:], w.ranked[pos+1:])
	w.ranked = w.ranked[:len(w.ranked)-1]
	w.markDirty(pos)
}

// ErrEmptyWindow is returned when a query runs against an empty window.
var ErrEmptyWindow = errors.New("stream: empty window")

// Table materialises the current window contents as an uncertain table in
// arrival order.
func (w *Window) Table() (*uncertain.Table, error) {
	if len(w.arrival) == 0 {
		return nil, ErrEmptyWindow
	}
	t := uncertain.NewTable()
	for _, e := range w.arrival {
		t.Add(e.tuple)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("stream: window contents invalid: %w", err)
	}
	return t, nil
}

// Prepared returns the prepared form of the current window contents,
// maintained incrementally: clean state is returned as-is; otherwise the
// rank suffix from the first changed position is re-prepared (or everything,
// after ME-group membership changed). Group-mass validation runs on every
// rebuild, so an overfull in-window group surfaces here.
func (w *Window) Prepared() (*uncertain.Prepared, error) {
	if len(w.ranked) == 0 {
		return nil, ErrEmptyWindow
	}
	if w.prep != nil && !w.needFull && w.dirtyFrom < 0 {
		w.stats.CachedQueries++
		return w.prep, nil
	}
	w.buf = w.buf[:0]
	for _, e := range w.ranked {
		w.buf = append(w.buf, e.tuple)
	}
	var (
		prev *uncertain.Prepared
		from int
	)
	if w.prep != nil && !w.needFull && w.dirtyFrom >= 0 {
		prev, from = w.prep, w.dirtyFrom
	}
	prep, err := uncertain.PrepareSorted(w.buf, prev, from)
	if err != nil {
		return nil, fmt.Errorf("stream: window contents invalid: %w", err)
	}
	if prev != nil {
		w.stats.SuffixRebuilds++
	} else {
		w.stats.FullRebuilds++
	}
	w.prep = prep
	w.dirtyFrom = -1
	w.needFull = false
	return prep, nil
}

// Result is one windowed query answer.
type Result struct {
	// Dist is the top-k score distribution of the window contents.
	Dist *pmf.Dist
	// Prepared gives access to the rank-ordered window for translating the
	// distribution's vector positions into tuple IDs.
	Prepared *uncertain.Prepared
	// WindowLen is the number of tuples that were in the window.
	WindowLen int
	// ScanDepth is the number of window tuples the query examined under
	// Theorem 2 (at most WindowLen).
	ScanDepth int
}

// TopK computes the top-k score distribution of the current window with the
// main algorithm under params (K is taken from the argument, overriding
// params.K), reusing the incrementally maintained prepared state and pooled
// DP scratch.
func (w *Window) TopK(k int, params core.Params) (*Result, error) {
	prep, err := w.Prepared()
	if err != nil {
		return nil, err
	}
	params.K = k
	res, err := core.Distribution(prep, params)
	if err != nil {
		return nil, err
	}
	return &Result{Dist: res.Dist, Prepared: prep, WindowLen: len(w.arrival), ScanDepth: res.ScanDepth}, nil
}

// Series runs a query after every arrival of stream and collects a chosen
// statistic of the window's top-k distribution — e.g. its mean or median —
// producing the time series a monitoring application would chart. Windows
// with fewer than k tuples yield NaN-free skips (the statistic is omitted
// and marked by ok=false in the callback).
func Series(window *Window, streamTuples []uncertain.Tuple, k int, params core.Params,
	stat func(*pmf.Dist) float64, observe func(step int, value float64, ok bool)) error {
	for i, t := range streamTuples {
		if _, err := window.Push(t); err != nil {
			return err
		}
		res, err := window.TopK(k, params)
		if err != nil {
			return err
		}
		if res.Dist.IsEmpty() {
			observe(i, 0, false)
			continue
		}
		observe(i, stat(res.Dist), true)
	}
	return nil
}

// Snapshot lists the window contents in rank (score, probability) order,
// useful for debugging and display.
func (w *Window) Snapshot() []uncertain.Tuple {
	out := make([]uncertain.Tuple, len(w.ranked))
	for i, e := range w.ranked {
		out[i] = e.tuple
	}
	return out
}

// Freeze publishes the current window contents as an immutable
// uncertain.Snapshot (in rank order). The window is single-owner, but the
// returned snapshot is not: it can be queried through an Engine from any
// goroutine — and cached under its identity — while the owner keeps
// pushing. An unchanged window returns the same snapshot on every call
// (so engine caches keep hitting); a Push clears the memo and the next
// Freeze mints a fresh identity. The frozen contents are validated so an
// overfull in-window ME group surfaces here, like at query time.
func (w *Window) Freeze() (*uncertain.Snapshot, error) {
	if len(w.ranked) == 0 {
		return nil, ErrEmptyWindow
	}
	if w.frozen != nil {
		return w.frozen, nil
	}
	// Snapshot() already builds a private slice; hand it over outright.
	snap := uncertain.OwnSnapshot(w.Snapshot())
	if err := snap.Validate(); err != nil {
		return nil, fmt.Errorf("stream: window contents invalid: %w", err)
	}
	w.frozen = snap
	return snap, nil
}
