// Package query provides a small relational layer over uncertain tables so
// the paper's experiment queries are expressible as they appear in §5.2:
//
//	SELECT segment_id, speed_limit / (length / delay) AS congestion_score
//	FROM area
//	ORDER BY congestion_score DESC
//	LIMIT k
//
// A Relation holds named numeric attributes per uncertain row (plus the id,
// probability and ME-group metadata); a scoring expression over those
// attributes is parsed and evaluated to produce the uncertain table the
// top-k algorithms consume.
package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Expr is a parsed scoring expression. Eval resolves attribute names through
// lookup.
type Expr interface {
	Eval(lookup func(name string) (float64, error)) (float64, error)
	String() string
}

type numberExpr float64

func (n numberExpr) Eval(func(string) (float64, error)) (float64, error) { return float64(n), nil }
func (n numberExpr) String() string                                      { return strconv.FormatFloat(float64(n), 'g', -1, 64) }

type columnExpr string

func (c columnExpr) Eval(lookup func(string) (float64, error)) (float64, error) {
	return lookup(string(c))
}
func (c columnExpr) String() string { return string(c) }

type unaryExpr struct {
	op rune
	x  Expr
}

func (u unaryExpr) Eval(lookup func(string) (float64, error)) (float64, error) {
	v, err := u.x.Eval(lookup)
	if err != nil {
		return 0, err
	}
	return -v, nil
}
func (u unaryExpr) String() string { return fmt.Sprintf("(-%s)", u.x) }

type binaryExpr struct {
	op   rune
	l, r Expr
}

func (b binaryExpr) Eval(lookup func(string) (float64, error)) (float64, error) {
	l, err := b.l.Eval(lookup)
	if err != nil {
		return 0, err
	}
	r, err := b.r.Eval(lookup)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("query: division by zero in %q", b.String())
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("query: unknown operator %q", b.op)
}
func (b binaryExpr) String() string { return fmt.Sprintf("(%s %c %s)", b.l, b.op, b.r) }

type callExpr struct {
	name string
	args []Expr
}

// functions maps the supported scoring functions to implementations.
var functions = map[string]struct {
	arity int
	apply func(args []float64) (float64, error)
}{
	"abs": {1, func(a []float64) (float64, error) { return math.Abs(a[0]), nil }},
	"sqrt": {1, func(a []float64) (float64, error) {
		if a[0] < 0 {
			return 0, fmt.Errorf("query: sqrt of negative value %v", a[0])
		}
		return math.Sqrt(a[0]), nil
	}},
	"log": {1, func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, fmt.Errorf("query: log of non-positive value %v", a[0])
		}
		return math.Log(a[0]), nil
	}},
	"min": {2, func(a []float64) (float64, error) { return math.Min(a[0], a[1]), nil }},
	"max": {2, func(a []float64) (float64, error) { return math.Max(a[0], a[1]), nil }},
}

func (c callExpr) Eval(lookup func(string) (float64, error)) (float64, error) {
	fn := functions[c.name]
	vals := make([]float64, len(c.args))
	for i, a := range c.args {
		v, err := a.Eval(lookup)
		if err != nil {
			return 0, err
		}
		vals[i] = v
	}
	return fn.apply(vals)
}
func (c callExpr) String() string {
	parts := make([]string, len(c.args))
	for i, a := range c.args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.name, strings.Join(parts, ", "))
}

// tokenizer

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokIdent
	tokOp // + - * / ( ) ,
)

type token struct {
	kind tokenKind
	op   rune
	num  float64
	id   string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		ch := rune(l.src[l.pos])
		switch {
		case unicode.IsSpace(ch):
			l.pos++
		case ch == '+' || ch == '-' || ch == '*' || ch == '/' || ch == '(' || ch == ')' || ch == ',' ||
			ch == '<' || ch == '>' || ch == '=' || ch == '!':
			// Comparison runes are consumed pairwise by the predicate parser
			// (<=, >=, ==, !=); arithmetic parsing rejects them.
			l.toks = append(l.toks, token{kind: tokOp, op: ch, pos: l.pos})
			l.pos++
		case unicode.IsDigit(ch) || ch == '.':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.' ||
				l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
				((l.src[l.pos] == '+' || l.src[l.pos] == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
				l.pos++
			}
			num, err := strconv.ParseFloat(l.src[start:l.pos], 64)
			if err != nil {
				return nil, fmt.Errorf("query: bad number %q at position %d", l.src[start:l.pos], start)
			}
			l.toks = append(l.toks, token{kind: tokNumber, num: num, pos: start})
		case unicode.IsLetter(ch) || ch == '_':
			start := l.pos
			for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, id: l.src[start:l.pos], pos: start})
		default:
			return nil, fmt.Errorf("query: unexpected character %q at position %d", ch, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: len(src)})
	return l.toks, nil
}

// parser: precedence climbing over + - (10) and * / (20) with unary minus.

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

// Parse compiles a scoring expression over named attributes.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: unexpected trailing input at position %d", t.pos)
	}
	return e, nil
}

func precedence(op rune) int {
	switch op {
	case '+', '-':
		return 10
	case '*', '/':
		return 20
	}
	return -1
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			return left, nil
		}
		prec := precedence(t.op)
		if prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = binaryExpr{op: t.op, l: left, r: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.kind == tokOp && t.op == '-' {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: '-', x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch {
	case t.kind == tokNumber:
		return numberExpr(t.num), nil
	case t.kind == tokIdent:
		if p.peek().kind == tokOp && p.peek().op == '(' {
			return p.parseCall(t)
		}
		return columnExpr(t.id), nil
	case t.kind == tokOp && t.op == '(':
		e, err := p.parseBinary(0)
		if err != nil {
			return nil, err
		}
		if c := p.next(); c.kind != tokOp || c.op != ')' {
			return nil, fmt.Errorf("query: missing ')' at position %d", c.pos)
		}
		return e, nil
	}
	return nil, fmt.Errorf("query: unexpected token at position %d", t.pos)
}

func (p *parser) parseCall(name token) (Expr, error) {
	fn, ok := functions[name.id]
	if !ok {
		return nil, fmt.Errorf("query: unknown function %q at position %d", name.id, name.pos)
	}
	p.next() // consume '('
	var args []Expr
	if !(p.peek().kind == tokOp && p.peek().op == ')') {
		for {
			a, err := p.parseBinary(0)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			t := p.peek()
			if t.kind == tokOp && t.op == ',' {
				p.next()
				continue
			}
			break
		}
	}
	if c := p.next(); c.kind != tokOp || c.op != ')' {
		return nil, fmt.Errorf("query: missing ')' in call to %s at position %d", name.id, c.pos)
	}
	if len(args) != fn.arity {
		return nil, fmt.Errorf("query: %s takes %d argument(s), got %d", name.id, fn.arity, len(args))
	}
	return callExpr{name: name.id, args: args}, nil
}
