package query

import (
	"testing"
)

func testPred(t *testing.T, src string, vars map[string]float64) bool {
	t.Helper()
	p, err := ParsePredicate(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := p.Test(func(name string) (float64, error) {
		return vars[name], nil
	})
	if err != nil {
		t.Fatalf("test %q: %v", src, err)
	}
	return v
}

func TestPredicates(t *testing.T) {
	vars := map[string]float64{"a": 1, "b": 2, "speed_limit": 50, "delay": 80, "length": 200}
	cases := []struct {
		src  string
		want bool
	}{
		{"a < b", true},
		{"a > b", false},
		{"a <= 1", true},
		{"a >= 1.5", false},
		{"a == 1", true},
		{"a != 1", false},
		{"a + 1 == b", true},
		{"a < b and b < 3", true},
		{"a < b and b > 3", false},
		{"a > b or b == 2", true},
		{"not a > b", true},
		{"not (a < b and b < 3)", false},
		{"(a + b) > 2", true},
		{"(a < b) or (b < a)", true},
		{"speed_limit / (length / delay) >= 20", true},
		{"speed_limit >= 50 and delay / length > 0.4", false},
		{"min(a, b) == 1 and max(a, b) == 2", true},
	}
	for _, c := range cases {
		if got := testPred(t, c.src, vars); got != c.want {
			t.Fatalf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestPredicateParseErrors(t *testing.T) {
	bad := []string{
		"", "a <", "< a", "a = b", "a ! b", "a == b ==", "a && b",
		"(a < b", "a < b)", "not", "a or", "a # b",
	}
	for _, src := range bad {
		if _, err := ParsePredicate(src); err == nil {
			t.Fatalf("%q should fail to parse", src)
		}
	}
}

func TestPredicateStrings(t *testing.T) {
	p, err := ParsePredicate("not (a < 1 and b >= 2) or c != 3")
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"not", "and", "or", "<", ">=", "!="} {
		if !contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFilter(t *testing.T) {
	rel, err := NewRelation("speed_limit", "length", "delay")
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		id           string
		group        string
		prob         float64
		sl, len, del float64
	}{
		{"s1/b1", "s1", 0.6, 50, 200, 80},
		{"s1/b2", "s1", 0.4, 50, 200, 300},
		{"s2", "", 1.0, 30, 100, 90},
		{"s3", "", 0.9, 80, 800, 100},
	}
	for _, r := range rows {
		if err := rel.Append(r.id, r.group, r.prob, r.sl, r.len, r.del); err != nil {
			t.Fatal(err)
		}
	}
	// Keep only fast roads (limit ≥ 50).
	fast, err := rel.Filter("speed_limit >= 50")
	if err != nil {
		t.Fatal(err)
	}
	if fast.Len() != 3 {
		t.Fatalf("filtered len = %d, want 3", fast.Len())
	}
	// Group metadata survives filtering and the table still builds.
	tab, err := fast.Table("speed_limit / (length / delay)")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 || tab.Tuple(0).Group != "s1" {
		t.Fatalf("table = %+v", tab.Tuples())
	}
	none, err := rel.Filter("speed_limit > 1000")
	if err != nil {
		t.Fatal(err)
	}
	if none.Len() != 0 {
		t.Fatal("expected empty relation")
	}
	if _, err := rel.Filter("no_such > 1"); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := rel.Filter("((("); err == nil {
		t.Fatal("bad predicate should error")
	}
}
