package query

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"probtopk/internal/uncertain"
)

// Relation is an uncertain relation: rows of named numeric attributes, each
// with an identifier, a membership probability and an optional ME group.
type Relation struct {
	columns []string
	index   map[string]int
	ids     []string
	groups  []string
	probs   []float64
	rows    [][]float64
}

// NewRelation creates a relation with the given attribute columns. The
// metadata names "id", "prob" and "group" are reserved.
func NewRelation(columns ...string) (*Relation, error) {
	r := &Relation{columns: append([]string(nil), columns...), index: map[string]int{}}
	for i, c := range columns {
		if c == "id" || c == "prob" || c == "group" {
			return nil, fmt.Errorf("query: column name %q is reserved", c)
		}
		if _, dup := r.index[c]; dup {
			return nil, fmt.Errorf("query: duplicate column %q", c)
		}
		r.index[c] = i
	}
	return r, nil
}

// Append adds one uncertain row. values must match the column count.
func (r *Relation) Append(id, group string, prob float64, values ...float64) error {
	if len(values) != len(r.columns) {
		return fmt.Errorf("query: row has %d values, relation has %d columns", len(values), len(r.columns))
	}
	r.ids = append(r.ids, id)
	r.groups = append(r.groups, group)
	r.probs = append(r.probs, prob)
	r.rows = append(r.rows, append([]float64(nil), values...))
	return nil
}

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.rows) }

// Columns returns the attribute names.
func (r *Relation) Columns() []string { return append([]string(nil), r.columns...) }

// Table evaluates the scoring expression on every row and returns the
// uncertain table for `SELECT id, <scoreExpr> AS score FROM r ORDER BY score
// DESC LIMIT k` style queries.
func (r *Relation) Table(scoreExpr string) (*uncertain.Table, error) {
	expr, err := Parse(scoreExpr)
	if err != nil {
		return nil, err
	}
	tab := uncertain.NewTable()
	for i, row := range r.rows {
		row := row
		score, err := expr.Eval(func(name string) (float64, error) {
			idx, ok := r.index[name]
			if !ok {
				return 0, fmt.Errorf("query: unknown column %q", name)
			}
			return row[idx], nil
		})
		if err != nil {
			return nil, fmt.Errorf("query: row %d (%s): %w", i, r.ids[i], err)
		}
		tab.Add(uncertain.Tuple{ID: r.ids[i], Score: score, Prob: r.probs[i], Group: r.groups[i]})
	}
	if err := tab.Validate(); err != nil {
		return nil, err
	}
	return tab, nil
}

// ReadCSV parses a relation. The header must contain id and prob, may
// contain group, and every other column is a numeric attribute.
func ReadCSV(in io.Reader) (*Relation, error) {
	cr := csv.NewReader(in)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("query: reading csv header: %w", err)
	}
	idCol, probCol, groupCol := -1, -1, -1
	var attrs []string
	var attrIdx []int
	for i, h := range header {
		switch h {
		case "id":
			idCol = i
		case "prob":
			probCol = i
		case "group":
			groupCol = i
		default:
			attrs = append(attrs, h)
			attrIdx = append(attrIdx, i)
		}
	}
	if idCol < 0 || probCol < 0 {
		return nil, fmt.Errorf("query: csv header must contain id and prob columns, got %v", header)
	}
	rel, err := NewRelation(attrs...)
	if err != nil {
		return nil, err
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("query: reading csv: %w", err)
		}
		prob, err := strconv.ParseFloat(rec[probCol], 64)
		if err != nil {
			return nil, fmt.Errorf("query: csv line %d: bad prob %q: %w", line, rec[probCol], err)
		}
		group := ""
		if groupCol >= 0 {
			group = rec[groupCol]
		}
		values := make([]float64, len(attrIdx))
		for j, idx := range attrIdx {
			v, err := strconv.ParseFloat(rec[idx], 64)
			if err != nil {
				return nil, fmt.Errorf("query: csv line %d: bad %s %q: %w", line, attrs[j], rec[idx], err)
			}
			values[j] = v
		}
		if err := rel.Append(rec[idCol], group, prob, values...); err != nil {
			return nil, err
		}
	}
	return rel, nil
}
