package query

import (
	"math"
	"strings"
	"testing"
)

func eval(t *testing.T, src string, vars map[string]float64) float64 {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := e.Eval(func(name string) (float64, error) {
		if x, ok := vars[name]; ok {
			return x, nil
		}
		t.Fatalf("unknown var %q", name)
		return 0, nil
	})
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestParseEval(t *testing.T) {
	vars := map[string]float64{"speed_limit": 50, "length": 200, "delay": 80, "x": -3}
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"2 * 3 - 4 / 2", 4},
		{"-x", 3},
		{"--x", -3},
		{"abs(x)", 3},
		{"sqrt(16)", 4},
		{"min(2, 3) + max(2, 3)", 5},
		{"log(1)", 0},
		{"1.5e2", 150},
		{"speed_limit / (length / delay)", 20}, // the paper's congestion score
		{"speed_limit/(length/delay) + 0", 20},
	}
	for _, c := range cases {
		if got := eval(t, c.src, vars); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "1)", "foo(1)", "min(1)", "min(1,2,3)", "1 @ 2",
		"abs()", "1..2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("%q should fail to parse", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	cases := []string{"1/0", "sqrt(-1)", "log(0)"}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Eval(nil); err == nil {
			t.Fatalf("%q should fail to evaluate", src)
		}
	}
}

func TestExprString(t *testing.T) {
	e, err := Parse("-min(a, 1) * (b + 2)")
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	for _, want := range []string{"min", "a", "b", "*"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestRelationTable(t *testing.T) {
	rel, err := NewRelation("speed_limit", "length", "delay")
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Append("seg1/b1", "seg1", 0.6, 50, 200, 80); err != nil {
		t.Fatal(err)
	}
	if err := rel.Append("seg1/b2", "seg1", 0.4, 50, 200, 160); err != nil {
		t.Fatal(err)
	}
	if err := rel.Append("seg2", "", 1.0, 30, 100, 90); err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("len = %d", rel.Len())
	}
	tab, err := rel.Table("speed_limit / (length / delay)")
	if err != nil {
		t.Fatal(err)
	}
	tp := tab.Tuple(0)
	if math.Abs(tp.Score-20) > 1e-12 || tp.Prob != 0.6 || tp.Group != "seg1" {
		t.Fatalf("tuple = %+v", tp)
	}
	if got := tab.Tuple(2).Score; math.Abs(got-27) > 1e-12 {
		t.Fatalf("seg2 score = %v", got)
	}
	if _, err := rel.Table("no_such_column + 1"); err == nil {
		t.Fatal("unknown column should error")
	}
	if _, err := rel.Table("(("); err == nil {
		t.Fatal("bad expression should error")
	}
}

func TestRelationValidation(t *testing.T) {
	if _, err := NewRelation("id"); err == nil {
		t.Fatal("reserved column should error")
	}
	if _, err := NewRelation("a", "a"); err == nil {
		t.Fatal("duplicate column should error")
	}
	rel, err := NewRelation("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Append("x", "", 0.5, 1, 2); err == nil {
		t.Fatal("arity mismatch should error")
	}
	if err := rel.Append("x", "", 7, 1); err != nil {
		t.Fatal(err) // bad prob surfaces at Table() time via Validate
	}
	if _, err := rel.Table("a"); err == nil {
		t.Fatal("invalid probability should surface on Table()")
	}
}

func TestReadCSV(t *testing.T) {
	src := `id,prob,group,speed_limit,length,delay
seg1/b1,0.6,seg1,50,200,80
seg1/b2,0.4,seg1,50,200,160
seg2,1.0,,30,100,90
`
	rel, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("len = %d", rel.Len())
	}
	cols := rel.Columns()
	if len(cols) != 3 || cols[0] != "speed_limit" {
		t.Fatalf("columns = %v", cols)
	}
	tab, err := rel.Table("speed_limit / (length / delay)")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("table len = %d", tab.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"a,b\n1,2\n",                // no id/prob
		"id,prob,a\nx,notnum,1\n",   // bad prob
		"id,prob,a\nx,0.5,notnum\n", // bad attribute
		"id,prob,a\nx,0.5\n",        // short record
	}
	for i, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Fatalf("case %d should error", i)
		}
	}
}
