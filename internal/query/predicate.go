package query

import (
	"fmt"
	"strings"
)

// Predicate is a parsed boolean row filter: comparisons over scoring
// expressions combined with AND/OR/NOT, so the paper's queries can carry a
// WHERE clause, e.g. "speed_limit >= 50 and delay / length > 0.4".
type Predicate interface {
	Test(lookup func(name string) (float64, error)) (bool, error)
	String() string
}

type cmpPredicate struct {
	op   string // one of < <= > >= == !=
	l, r Expr
}

func (c cmpPredicate) Test(lookup func(string) (float64, error)) (bool, error) {
	l, err := c.l.Eval(lookup)
	if err != nil {
		return false, err
	}
	r, err := c.r.Eval(lookup)
	if err != nil {
		return false, err
	}
	switch c.op {
	case "<":
		return l < r, nil
	case "<=":
		return l <= r, nil
	case ">":
		return l > r, nil
	case ">=":
		return l >= r, nil
	case "==":
		return l == r, nil
	case "!=":
		return l != r, nil
	}
	return false, fmt.Errorf("query: unknown comparison %q", c.op)
}
func (c cmpPredicate) String() string { return fmt.Sprintf("(%s %s %s)", c.l, c.op, c.r) }

type boolPredicate struct {
	op   string // "and" | "or"
	l, r Predicate
}

func (b boolPredicate) Test(lookup func(string) (float64, error)) (bool, error) {
	l, err := b.l.Test(lookup)
	if err != nil {
		return false, err
	}
	// No short-circuit: surface evaluation errors deterministically.
	r, err := b.r.Test(lookup)
	if err != nil {
		return false, err
	}
	if b.op == "and" {
		return l && r, nil
	}
	return l || r, nil
}
func (b boolPredicate) String() string { return fmt.Sprintf("(%s %s %s)", b.l, b.op, b.r) }

type notPredicate struct{ x Predicate }

func (n notPredicate) Test(lookup func(string) (float64, error)) (bool, error) {
	v, err := n.x.Test(lookup)
	return !v, err
}
func (n notPredicate) String() string { return fmt.Sprintf("(not %s)", n.x) }

// ParsePredicate compiles a WHERE-style boolean expression. Grammar
// (lowest to highest precedence): OR, AND, NOT, comparison of two arithmetic
// expressions, parenthesised predicate.
func ParsePredicate(src string) (Predicate, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &predParser{parser: parser{toks: toks}}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: unexpected trailing input at position %d", t.pos)
	}
	return pred, nil
}

type predParser struct {
	parser
}

func (p *predParser) keyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.id, kw)
}

func (p *predParser) parseOr() (Predicate, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = boolPredicate{op: "or", l: left, r: right}
	}
	return left, nil
}

func (p *predParser) parseAnd() (Predicate, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = boolPredicate{op: "and", l: left, r: right}
	}
	return left, nil
}

func (p *predParser) parseNot() (Predicate, error) {
	if p.keyword("not") {
		p.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notPredicate{x: x}, nil
	}
	return p.parseComparison()
}

// parseComparison parses either "( predicate )" or "expr OP expr". The
// parenthesis case is ambiguous with a parenthesised arithmetic expression,
// so it backtracks when the inner parse is not a predicate.
func (p *predParser) parseComparison() (Predicate, error) {
	if t := p.peek(); t.kind == tokOp && t.op == '(' {
		save := p.pos
		p.next()
		if inner, err := p.parseOr(); err == nil {
			if c := p.peek(); c.kind == tokOp && c.op == ')' {
				p.next()
				// Only accept if a comparison does not follow (otherwise it
				// was an arithmetic group like "(a + b) > c").
				if !p.comparisonAhead() {
					return inner, nil
				}
			}
		}
		p.pos = save
	}
	left, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	op, err := p.comparisonOp()
	if err != nil {
		return nil, err
	}
	right, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	return cmpPredicate{op: op, l: left, r: right}, nil
}

// comparisonAhead reports whether the next tokens look like a comparison
// operator (lexed as ident-free op runes '<', '>', '=', '!').
func (p *predParser) comparisonAhead() bool {
	t := p.peek()
	return t.kind == tokOp && (t.op == '<' || t.op == '>' || t.op == '=' || t.op == '!')
}

func (p *predParser) comparisonOp() (string, error) {
	t := p.next()
	if t.kind != tokOp {
		return "", fmt.Errorf("query: expected comparison operator at position %d", t.pos)
	}
	switch t.op {
	case '<', '>':
		op := string(t.op)
		if n := p.peek(); n.kind == tokOp && n.op == '=' {
			p.next()
			op += "="
		}
		return op, nil
	case '=':
		if n := p.peek(); n.kind == tokOp && n.op == '=' {
			p.next()
			return "==", nil
		}
		return "", fmt.Errorf("query: use '==' for equality (position %d)", t.pos)
	case '!':
		if n := p.peek(); n.kind == tokOp && n.op == '=' {
			p.next()
			return "!=", nil
		}
		return "", fmt.Errorf("query: use '!=' for inequality (position %d)", t.pos)
	}
	return "", fmt.Errorf("query: expected comparison operator at position %d", t.pos)
}

// Filter returns a new relation containing only the rows satisfying the
// predicate.
func (r *Relation) Filter(wherExpr string) (*Relation, error) {
	pred, err := ParsePredicate(wherExpr)
	if err != nil {
		return nil, err
	}
	out, err := NewRelation(r.columns...)
	if err != nil {
		return nil, err
	}
	for i, row := range r.rows {
		row := row
		keep, err := pred.Test(func(name string) (float64, error) {
			idx, ok := r.index[name]
			if !ok {
				return 0, fmt.Errorf("query: unknown column %q", name)
			}
			return row[idx], nil
		})
		if err != nil {
			return nil, fmt.Errorf("query: row %d (%s): %w", i, r.ids[i], err)
		}
		if keep {
			if err := out.Append(r.ids[i], r.groups[i], r.probs[i], row...); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
