// Package typical implements §4 of the paper: selecting the c-Typical-Topk
// answers from a top-k score distribution.
//
// Given the distribution {(s_i, p_i, v_i)} produced by internal/core, the
// c-Typical-Topk scores minimize E[min_i |S − s_i|] for S drawn from the
// distribution (Definition 1), and the c-Typical-Topk tuples are the
// highest-probability vectors carrying those scores (Definition 2).
//
// Three solvers are provided:
//
//   - SelectNaive — the two-function dynamic program of Figure 7, verbatim:
//     recursions (5)/(6) over prefix sums P/PS with traceback arrays f/g.
//     The paper states O(cn) but its pseudocode performs the inner
//     minimisations explicitly, costing O(cn²); this solver is the faithful
//     transcription.
//   - Select — the same recurrences solved with divide-and-conquer
//     optimisation, valid because both interval cost functions satisfy the
//     convex quadrangle (Monge) inequality; O(cn log n). This realises the
//     near-linear complexity the paper attributes to Hassin & Tamir's
//     technique.
//   - BruteForce — exhaustive search over all C(n, c) score subsets, the
//     test oracle.
package typical

import (
	"errors"
	"fmt"
	"math"

	"probtopk/internal/pmf"
)

// Answer is a c-Typical-Topk result.
type Answer struct {
	// Scores are the chosen typical scores in ascending order.
	Scores []float64
	// Lines are the distribution lines carrying those scores; each Line's
	// Vec/VecProb identify the most probable top-k vector with that score
	// (Definition 2).
	Lines []pmf.Line
	// Cost is the achieved objective Σ_b p_b · min_i |s_b − s_i| — the
	// expected distance between a random top-k score and its nearest typical
	// score, weighted by the distribution's (possibly unnormalized) mass.
	Cost float64
}

// ErrEmptyDistribution is returned when the distribution has no lines.
var ErrEmptyDistribution = errors.New("typical: empty distribution")

func checkArgs(d *pmf.Dist, c int) error {
	if d == nil || d.Len() == 0 {
		return ErrEmptyDistribution
	}
	if c < 1 {
		return fmt.Errorf("typical: c must be ≥ 1, got %d", c)
	}
	return nil
}

// Cost evaluates the Definition-1 objective for an arbitrary set of points:
// Σ_b p_b · min_i |s_b − points_i| over the lines of d.
func Cost(d *pmf.Dist, points []float64) float64 {
	if d.Len() == 0 || len(points) == 0 {
		return math.NaN()
	}
	return d.ExpectedMinDistance(points) * d.TotalMass()
}

// allLines returns the trivial answer when c ≥ n: every support point is
// typical and the cost is zero.
func allLines(d *pmf.Dist) *Answer {
	lines := d.Lines()
	a := &Answer{Lines: lines, Scores: make([]float64, len(lines))}
	for i, l := range lines {
		a.Scores[i] = l.Score
	}
	return a
}

// tables holds the shared state of both DP solvers: 1-based prefix sums over
// the ascending score order, following the paper's notation.
type tables struct {
	s, p  []float64 // s[1..n], p[1..n]
	P, PS []float64 // P[0..n], PS[0..n]
	n     int
	F, G  [][]float64 // [a][j]
	f, g  [][]int
	lines []pmf.Line
}

func newTables(d *pmf.Dist, c int) *tables {
	lines := d.Lines()
	n := len(lines)
	t := &tables{n: n, lines: lines}
	t.s = make([]float64, n+1)
	t.p = make([]float64, n+1)
	t.P = make([]float64, n+1)
	t.PS = make([]float64, n+1)
	for j := 1; j <= n; j++ {
		t.s[j] = lines[j-1].Score
		t.p[j] = lines[j-1].Prob
		t.P[j] = t.P[j-1] + t.p[j]
		t.PS[j] = t.PS[j-1] + t.p[j]*t.s[j]
	}
	t.F = make([][]float64, c+1)
	t.G = make([][]float64, c+1)
	t.f = make([][]int, c+1)
	t.g = make([][]int, c+1)
	for a := 1; a <= c; a++ {
		t.F[a] = make([]float64, n+2)
		t.G[a] = make([]float64, n+2)
		t.f[a] = make([]int, n+2)
		t.g[a] = make([]int, n+2)
	}
	return t
}

// fCost is the bracketed expression of recursion (5): the cost of assigning
// points j..k to the typical score s_k, plus the subproblem where s_k is
// typical with a typicals remaining.
func (t *tables) fCost(a, j, k int) float64 {
	return (t.P[k]-t.P[j-1])*t.s[k] - t.PS[k] + t.PS[j-1] + t.G[a][k]
}

// gCost is the bracketed expression of recursion (6): the cost of assigning
// points j..k−1 leftward to the typical score s_j, plus the subproblem
// starting at k with a−1 typicals.
func (t *tables) gCost(a, j, k int) float64 {
	return t.PS[k-1] - t.PS[j-1] - (t.P[k-1]-t.P[j-1])*t.s[j] + t.F[a-1][k]
}

// boundaryG fills G[1][j] = Σ_{b=j..n} p_b (s_b − s_j), equation (3).
func (t *tables) boundaryG() {
	for j := 1; j <= t.n; j++ {
		t.G[1][j] = t.PS[t.n] - t.PS[j-1] - (t.P[t.n]-t.P[j-1])*t.s[j]
		t.g[1][j] = t.n + 1
	}
}

// traceback reconstructs the chosen positions from f/g, per Figure 7
// lines 36–41.
func (t *tables) traceback(c int) *Answer {
	ans := &Answer{}
	k := 1
	for a := c; a >= 1; a-- {
		i := t.f[a][k]
		ans.Scores = append(ans.Scores, t.s[i])
		ans.Lines = append(ans.Lines, t.lines[i-1])
		k = t.g[a][i]
	}
	ans.Cost = t.F[c][1]
	return ans
}

// SelectNaive computes the c-Typical-Topk answer with the Figure-7 dynamic
// program exactly as published: O(cn²) time, O(cn) space.
func SelectNaive(d *pmf.Dist, c int) (*Answer, error) {
	if err := checkArgs(d, c); err != nil {
		return nil, err
	}
	if c >= d.Len() {
		return allLines(d), nil
	}
	t := newTables(d, c)
	n := t.n
	t.boundaryG()
	fillF := func(a int) {
		for j := 1; j <= n; j++ {
			t.F[a][j] = math.MaxFloat64
			for k := j; k <= n; k++ {
				if v := t.fCost(a, j, k); v < t.F[a][j] {
					t.F[a][j] = v
					t.f[a][j] = k
				}
			}
		}
	}
	fillF(1)
	for a := 2; a <= c; a++ {
		t.F[a-1][n+1] = 0
		for j := 1; j <= n; j++ {
			t.G[a][j] = math.MaxFloat64
			for k := j + 1; k <= n+1; k++ {
				if v := t.gCost(a, j, k); v < t.G[a][j] {
					t.G[a][j] = v
					t.g[a][j] = k
				}
			}
		}
		fillF(a)
	}
	return t.traceback(c), nil
}

// Select computes the c-Typical-Topk answer using divide-and-conquer
// optimisation of the same recurrences: both interval costs satisfy the
// convex quadrangle inequality, so the optimal k is monotone in j and each
// layer fills in O(n log n).
func Select(d *pmf.Dist, c int) (*Answer, error) {
	if err := checkArgs(d, c); err != nil {
		return nil, err
	}
	if c >= d.Len() {
		return allLines(d), nil
	}
	t := newTables(d, c)
	n := t.n
	t.boundaryG()

	// solve fills row[j] = min over k in [max(j, kLo) .. kHi] of cost(j, k)
	// for j in [jLo, jHi], exploiting argmin monotonicity.
	var solve func(cost func(j, k int) float64, row []float64, arg []int, jLo, jHi, kLo, kHi int, kMin func(j int) int)
	solve = func(cost func(j, k int) float64, row []float64, arg []int, jLo, jHi, kLo, kHi int, kMin func(j int) int) {
		if jLo > jHi {
			return
		}
		j := (jLo + jHi) / 2
		lo := kLo
		if m := kMin(j); m > lo {
			lo = m
		}
		best, bestK := math.MaxFloat64, lo
		for k := lo; k <= kHi; k++ {
			if v := cost(j, k); v < best {
				best, bestK = v, k
			}
		}
		row[j], arg[j] = best, bestK
		solve(cost, row, arg, jLo, j-1, kLo, bestK, kMin)
		solve(cost, row, arg, j+1, jHi, bestK, kHi, kMin)
	}

	fillF := func(a int) {
		solve(func(j, k int) float64 { return t.fCost(a, j, k) },
			t.F[a], t.f[a], 1, n, 1, n, func(j int) int { return j })
	}
	fillF(1)
	for a := 2; a <= c; a++ {
		t.F[a-1][n+1] = 0
		solve(func(j, k int) float64 { return t.gCost(a, j, k) },
			t.G[a], t.g[a], 1, n, 2, n+1, func(j int) int { return j + 1 })
		fillF(a)
	}
	return t.traceback(c), nil
}

// BruteForce enumerates every c-subset of support points and returns one
// with minimal cost. Exponential; only for validation on small inputs.
func BruteForce(d *pmf.Dist, c int) (*Answer, error) {
	if err := checkArgs(d, c); err != nil {
		return nil, err
	}
	lines := d.Lines()
	n := len(lines)
	if c >= n {
		return allLines(d), nil
	}
	combo := make([]int, c)
	points := make([]float64, c)
	best := &Answer{Cost: math.MaxFloat64}
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == c {
			for i, idx := range combo {
				points[i] = lines[idx].Score
			}
			if cost := Cost(d, points); cost < best.Cost {
				best.Cost = cost
				best.Scores = append(best.Scores[:0], points...)
				best.Lines = best.Lines[:0]
				for _, idx := range combo {
					best.Lines = append(best.Lines, lines[idx])
				}
			}
			return
		}
		for i := start; i <= n-(c-depth); i++ {
			combo[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best, nil
}
