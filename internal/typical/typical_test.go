package typical

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"probtopk/internal/core"
	"probtopk/internal/fixtures"
	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

func soldierDist(t *testing.T) *pmf.Dist {
	t.Helper()
	p, err := uncertain.Prepare(fixtures.Soldier())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Distribution(p, core.Params{K: 2, TrackVectors: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Dist
}

type solver struct {
	name string
	run  func(*pmf.Dist, int) (*Answer, error)
}

func solvers() []solver {
	return []solver{{"Select", Select}, {"SelectNaive", SelectNaive}, {"BruteForce", BruteForce}}
}

// TestSoldier3Typical reproduces §2.2: the 3-Typical-Top2 scores of Example 1
// are {118, 183, 235} with expected distance 6.6, and the vectors are
// {(T2,T6), (T7,T6), (T7,T3)}.
func TestSoldier3Typical(t *testing.T) {
	d := soldierDist(t)
	p, _ := uncertain.Prepare(fixtures.Soldier())
	wantVecs := [][]string{{"T2", "T6"}, {"T7", "T6"}, {"T7", "T3"}}
	for _, s := range solvers() {
		t.Run(s.name, func(t *testing.T) {
			ans, err := s.run(d, 3)
			if err != nil {
				t.Fatal(err)
			}
			want := fixtures.SoldierTypical3Scores()
			if len(ans.Scores) != 3 {
				t.Fatalf("scores = %v", ans.Scores)
			}
			for i := range want {
				if math.Abs(ans.Scores[i]-want[i]) > 1e-9 {
					t.Fatalf("scores = %v, want %v", ans.Scores, want)
				}
			}
			if math.Abs(ans.Cost-fixtures.SoldierTypical3Dist) > 1e-9 {
				t.Fatalf("cost = %v, want %v", ans.Cost, fixtures.SoldierTypical3Dist)
			}
			for i, l := range ans.Lines {
				ids := p.IDs(l.Vec.Slice())
				if len(ids) != 2 || ids[0] != wantVecs[i][0] || ids[1] != wantVecs[i][1] {
					t.Fatalf("vector %d = %v, want %v", i, ids, wantVecs[i])
				}
			}
		})
	}
}

// TestSoldier1Typical reproduces §2.2: the 1-Typical-Top2 vector is (T3, T2)
// with score 170 and probability 0.16.
func TestSoldier1Typical(t *testing.T) {
	d := soldierDist(t)
	p, _ := uncertain.Prepare(fixtures.Soldier())
	for _, s := range solvers() {
		ans, err := s.run(d, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if len(ans.Scores) != 1 || ans.Scores[0] != fixtures.SoldierTypical1Score {
			t.Fatalf("%s: scores = %v, want [170]", s.name, ans.Scores)
		}
		ids := p.IDs(ans.Lines[0].Vec.Slice())
		if ids[0] != "T3" || ids[1] != "T2" {
			t.Fatalf("%s: vector = %v, want [T3 T2]", s.name, ids)
		}
		if math.Abs(ans.Lines[0].VecProb-fixtures.SoldierTypical1Prob) > 1e-12 {
			t.Fatalf("%s: prob = %v, want %v", s.name, ans.Lines[0].VecProb, fixtures.SoldierTypical1Prob)
		}
	}
}

// The 1-typical score restricted to support points minimizes E|S − s|, i.e.
// it is a weighted median.
func TestOneTypicalIsWeightedMedian(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		d := randomDist(r, 2+r.Intn(40))
		ans, err := Select(d, 1)
		if err != nil {
			t.Fatal(err)
		}
		med := d.Median()
		if diff := math.Abs(Cost(d, []float64{med}) - ans.Cost); diff > 1e-9 {
			t.Fatalf("trial %d: median cost %v vs typical cost %v", trial,
				Cost(d, []float64{med}), ans.Cost)
		}
	}
}

func randomDist(r *rand.Rand, n int) *pmf.Dist {
	lines := make([]pmf.Line, n)
	for i := range lines {
		lines[i] = pmf.Line{Score: math.Floor(r.Float64()*1000) / 2, Prob: 0.01 + r.Float64()}
	}
	return pmf.FromLines(lines)
}

// TestSolversAgree: the faithful O(cn²) DP, the divide-and-conquer DP, and
// brute force achieve the same optimal cost on random inputs.
func TestSolversAgree(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		n := 2 + r.Intn(14)
		d := randomDist(r, n)
		c := 1 + r.Intn(5)
		naive, err := SelectNaive(d, c)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := Select(d, c)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(d, c)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(naive.Cost-bf.Cost) > 1e-9 {
			t.Fatalf("trial %d (n=%d c=%d): naive %v vs brute %v\nscores %v vs %v",
				trial, d.Len(), c, naive.Cost, bf.Cost, naive.Scores, bf.Scores)
		}
		if math.Abs(dc.Cost-bf.Cost) > 1e-9 {
			t.Fatalf("trial %d (n=%d c=%d): dc %v vs brute %v\nscores %v vs %v",
				trial, d.Len(), c, dc.Cost, bf.Cost, dc.Scores, bf.Scores)
		}
		// Achieved cost must equal the independent evaluation of the chosen
		// scores.
		if math.Abs(Cost(d, naive.Scores)-naive.Cost) > 1e-9 {
			t.Fatalf("trial %d: reported cost %v, evaluated %v", trial, naive.Cost, Cost(d, naive.Scores))
		}
	}
}

// TestSolversAgreeLarger: naive vs DC on larger inputs (brute force skipped).
func TestSolversAgreeLarger(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		d := randomDist(r, 50+r.Intn(150))
		for _, c := range []int{1, 2, 3, 7, 15} {
			naive, err := SelectNaive(d, c)
			if err != nil {
				t.Fatal(err)
			}
			dc, err := Select(d, c)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(naive.Cost-dc.Cost) > 1e-6*math.Max(1, naive.Cost) {
				t.Fatalf("trial %d c=%d: naive %v vs dc %v", trial, c, naive.Cost, dc.Cost)
			}
		}
	}
}

func TestScoresAscendingAndValid(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		d := randomDist(r, 2+r.Intn(30))
		c := 1 + r.Intn(6)
		ans, err := Select(d, c)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := c
		if c > d.Len() {
			wantLen = d.Len()
		}
		if len(ans.Scores) != wantLen {
			t.Fatalf("got %d scores, want %d", len(ans.Scores), wantLen)
		}
		if !sort.Float64sAreSorted(ans.Scores) {
			t.Fatalf("scores not ascending: %v", ans.Scores)
		}
		support := map[float64]bool{}
		for _, l := range d.Lines() {
			support[l.Score] = true
		}
		for i, s := range ans.Scores {
			if !support[s] {
				t.Fatalf("score %v not a support point", s)
			}
			if i > 0 && ans.Scores[i] == ans.Scores[i-1] {
				t.Fatalf("duplicate typical score %v", s)
			}
		}
	}
}

func TestCEqualsOrExceedsN(t *testing.T) {
	d := pmf.FromLines([]pmf.Line{{Score: 1, Prob: 0.5}, {Score: 2, Prob: 0.5}})
	for _, s := range solvers() {
		ans, err := s.run(d, 5)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if len(ans.Scores) != 2 || ans.Cost != 0 {
			t.Fatalf("%s: answer = %+v", s.name, ans)
		}
	}
}

func TestArgErrors(t *testing.T) {
	d := pmf.FromLines([]pmf.Line{{Score: 1, Prob: 1}})
	for _, s := range solvers() {
		if _, err := s.run(pmf.New(), 1); err != ErrEmptyDistribution {
			t.Fatalf("%s: err = %v", s.name, err)
		}
		if _, err := s.run(nil, 1); err != ErrEmptyDistribution {
			t.Fatalf("%s: nil dist err = %v", s.name, err)
		}
		if _, err := s.run(d, 0); err == nil {
			t.Fatalf("%s: c=0 should error", s.name)
		}
	}
}

// Property: cost is non-increasing in c (more typical vectors can only help).
func TestCostMonotoneInC(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		d := randomDist(r, 5+r.Intn(40))
		prev := math.MaxFloat64
		for c := 1; c <= 8; c++ {
			ans, err := Select(d, c)
			if err != nil {
				t.Fatal(err)
			}
			if ans.Cost > prev+1e-9 {
				t.Fatalf("trial %d: cost increased from %v to %v at c=%d", trial, prev, ans.Cost, c)
			}
			prev = ans.Cost
		}
	}
}

// The i-th typical score sits near quantile i/(c+1), per the paper's
// intuition ("the ith vector has a score that is approximately i/(c+1)
// through the probability distribution"). We verify loosely on a smooth
// distribution.
func TestQuantileIntuition(t *testing.T) {
	lines := make([]pmf.Line, 401)
	for i := range lines {
		x := float64(i-200) / 60
		lines[i] = pmf.Line{Score: float64(i), Prob: math.Exp(-x * x / 2)}
	}
	d := pmf.FromLines(lines)
	d.Normalize()
	ans, err := Select(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ans.Scores {
		q := d.Quantile(float64(i+1) / 4)
		if math.Abs(s-q) > 40 { // loose: typical ≠ quantile, but nearby
			t.Fatalf("typical[%d] = %v, far from quantile %v", i, s, q)
		}
	}
}
