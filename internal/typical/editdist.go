package typical

// The paper's §4 closes by noting that "a user could examine the edit
// distances between the vectors and potentially try different values of c.
// ... The magnitude of the distances indicates the span of the k-dimensional
// vector space. Smaller distances indicate that the result is less uncertain
// while bigger distances indicate larger uncertainty." This file provides
// that analysis.

// EditDistance returns the set edit distance between two top-k tuple
// vectors: the minimum number of single-tuple replacements turning one into
// the other, i.e. k − |a ∩ b| for equal-length vectors (order inside a
// vector carries no information — a top-k vector is a set of co-existing
// tuples). For unequal lengths the length difference adds
// insertions/deletions.
func EditDistance(a, b []int) int {
	inA := make(map[int]int, len(a))
	for _, t := range a {
		inA[t]++
	}
	common := 0
	for _, t := range b {
		if inA[t] > 0 {
			inA[t]--
			common++
		}
	}
	la, lb := len(a), len(b)
	max := la
	if lb > max {
		max = lb
	}
	return max - common
}

// Spread summarises the pairwise edit distances of a c-Typical-Topk answer:
// the mean and maximum distance between the chosen vectors. Per §4, a small
// spread means the typical answers largely agree on membership (the result
// is not very uncertain); a large spread means the probable top-k sets are
// genuinely different. Returns zeros when fewer than two vectors carry
// tuples.
func (a *Answer) Spread() (mean float64, max int) {
	var vecs [][]int
	for _, l := range a.Lines {
		if l.Vec != nil {
			vecs = append(vecs, l.Vec.Slice())
		}
	}
	if len(vecs) < 2 {
		return 0, 0
	}
	var sum, pairs int
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			d := EditDistance(vecs[i], vecs[j])
			sum += d
			pairs++
			if d > max {
				max = d
			}
		}
	}
	return float64(sum) / float64(pairs), max
}
