package typical

import (
	"math/rand"
	"testing"
	"testing/quick"

	"probtopk/internal/core"
	"probtopk/internal/fixtures"
	"probtopk/internal/uncertain"
)

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{1, 2}, []int{1, 2}, 0},
		{[]int{1, 2}, []int{2, 1}, 0}, // order-insensitive
		{[]int{1, 2}, []int{1, 3}, 1},
		{[]int{1, 2}, []int{3, 4}, 2},
		{[]int{1, 2, 3}, []int{1}, 2},
		{nil, nil, 0},
		{[]int{5}, nil, 1},
		{[]int{1, 1, 2}, []int{1, 2, 2}, 1}, // multiset semantics
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Fatalf("EditDistance(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Properties: symmetry, identity, triangle inequality, bounds.
func TestEditDistanceProperties(t *testing.T) {
	gen := func(r *rand.Rand) []int {
		n := r.Intn(6)
		v := make([]int, n)
		for i := range v {
			v[i] = r.Intn(8)
		}
		return v
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		dab, dba := EditDistance(a, b), EditDistance(b, a)
		if dab != dba {
			return false
		}
		if EditDistance(a, a) != 0 {
			return false
		}
		if dab > len(a)+len(b) {
			return false
		}
		return EditDistance(a, c) <= dab+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSpreadSoldier: the 3-Typical-Top2 vectors of Example 1 are
// (T2,T6), (T7,T6), (T7,T3) — pairwise distances 1, 2, 1.
func TestSpreadSoldier(t *testing.T) {
	p, err := uncertain.Prepare(fixtures.Soldier())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Distribution(p, core.Params{K: 2, TrackVectors: true})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := Select(res.Dist, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean, max := ans.Spread()
	if max != 2 {
		t.Fatalf("max spread = %d, want 2", max)
	}
	if mean < 1.3 || mean > 1.4 { // (1+2+1)/3
		t.Fatalf("mean spread = %v, want 4/3", mean)
	}
}

func TestSpreadDegenerate(t *testing.T) {
	ans := &Answer{}
	if mean, max := ans.Spread(); mean != 0 || max != 0 {
		t.Fatal("empty answer should have zero spread")
	}
}
