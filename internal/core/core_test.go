package core

import (
	"math"
	"math/rand"
	"testing"

	"probtopk/internal/fixtures"
	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
	"probtopk/internal/worlds"
)

// exactParams run any algorithm in exact mode: full scan, no pruning, no
// line coalescing, vectors tracked.
func exactParams(k int) Params {
	return Params{K: k, Threshold: 0, MaxLines: 0, TrackVectors: true}
}

func prep(t testing.TB, tab *uncertain.Table) *uncertain.Prepared {
	t.Helper()
	p, err := uncertain.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

type algo struct {
	name string
	run  func(*uncertain.Prepared, Params) (*Result, error)
}

func algorithms() []algo {
	return []algo{
		{"MainDP", Distribution},
		{"StateExpansion", StateExpansion},
		{"KCombo", KCombo},
	}
}

// sameDist asserts two distributions agree line by line within tolerance.
func sameDist(t *testing.T, name string, got, want *pmf.Dist) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d lines, want %d\n got: %v\nwant: %v", name, got.Len(), want.Len(), got.Lines(), want.Lines())
	}
	for i := 0; i < want.Len(); i++ {
		g, w := got.Line(i), want.Line(i)
		if math.Abs(g.Score-w.Score) > 1e-9*math.Max(1, math.Abs(w.Score)) {
			t.Fatalf("%s: line %d score %v, want %v", name, i, g.Score, w.Score)
		}
		if math.Abs(g.Prob-w.Prob) > 1e-9 {
			t.Fatalf("%s: line %d (score %v) prob %v, want %v", name, i, w.Score, g.Prob, w.Prob)
		}
	}
}

// TestSoldierAllAlgorithms reproduces Figure 3 with every algorithm and
// checks each in-text number of §1 and §2.2.
func TestSoldierAllAlgorithms(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	exact, err := worlds.ExactDistribution(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algorithms() {
		t.Run(a.name, func(t *testing.T) {
			res, err := a.run(p, exactParams(2))
			if err != nil {
				t.Fatal(err)
			}
			sameDist(t, a.name, res.Dist, exact)
			if math.Abs(res.Dist.Mean()-fixtures.SoldierExpectedScore) > 1e-9 {
				t.Fatalf("mean = %v, want %v", res.Dist.Mean(), fixtures.SoldierExpectedScore)
			}
			// U-Top2 = <T2, T6> with probability 0.2, score 118.
			l, ok := res.Dist.MaxVecProbLine()
			if !ok {
				t.Fatal("no max-vec-prob line")
			}
			ids := p.IDs(l.Vec.Slice())
			if len(ids) != 2 || ids[0] != "T2" || ids[1] != "T6" {
				t.Fatalf("U-Top2 vector = %v, want [T2 T6]", ids)
			}
			if math.Abs(l.VecProb-fixtures.SoldierUTopkProb) > 1e-12 {
				t.Fatalf("U-Top2 prob = %v, want %v", l.VecProb, fixtures.SoldierUTopkProb)
			}
			if l.Score != fixtures.SoldierUTopkScore {
				t.Fatalf("U-Top2 score = %v, want %v", l.Score, fixtures.SoldierUTopkScore)
			}
			// The (T3, T2) vector at score 170 has probability 0.16.
			for _, line := range res.Dist.Lines() {
				if line.Score == 170 && math.Abs(line.VecProb-fixtures.SoldierTypical1Prob) > 1e-12 {
					t.Fatalf("Pr(T3,T2) = %v, want %v", line.VecProb, fixtures.SoldierTypical1Prob)
				}
			}
		})
	}
}

// TestExample4Ties verifies the tie semantics of §3.4 on the paper's
// Example 4 numbers: for the table {T5 (7, 0.5), T6 (7, 0.4), T7 (7, 0.2)}
// and k = 2, the total mass is Pr(≥ 2 of the tie group appear) = 0.3, and
// the recorded vector is (T5, T6) with path probability 0.5·0.4 = 0.2.
func TestExample4Ties(t *testing.T) {
	tab := uncertain.NewTable()
	tab.AddIndependent("T5", 7, 0.5)
	tab.AddIndependent("T6", 7, 0.4)
	tab.AddIndependent("T7", 7, 0.2)
	p := prep(t, tab)
	for _, a := range algorithms() {
		t.Run(a.name, func(t *testing.T) {
			res, err := a.run(p, exactParams(2))
			if err != nil {
				t.Fatal(err)
			}
			if res.Dist.Len() != 1 {
				t.Fatalf("lines = %d, want 1", res.Dist.Len())
			}
			l := res.Dist.Line(0)
			if l.Score != 14 {
				t.Fatalf("score = %v, want 14", l.Score)
			}
			if math.Abs(l.Prob-fixtures.TieExample4AtLeast2of3) > 1e-12 {
				t.Fatalf("Pr = %v, want %v", l.Prob, fixtures.TieExample4AtLeast2of3)
			}
			ids := p.IDs(l.Vec.Slice())
			if ids[0] != "T5" || ids[1] != "T6" {
				t.Fatalf("vector = %v, want [T5 T6]", ids)
			}
			if math.Abs(l.VecProb-0.2) > 1e-12 {
				t.Fatalf("vector prob = %v, want 0.2", l.VecProb)
			}
		})
	}
}

// TestExample4FullTable runs the complete 7-tuple Example 4 table at k = 5
// against the oracle.
func TestExample4FullTable(t *testing.T) {
	p := prep(t, fixtures.TieExample4())
	exact, err := worlds.ExactDistribution(p, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algorithms() {
		res, err := a.run(p, exactParams(5))
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		sameDist(t, a.name, res.Dist, exact)
	}
}

// randomTable builds a small random uncertain table with optional ME groups
// and score ties, suitable for exhaustive world enumeration.
func randomTable(r *rand.Rand, maxN int, tieProb, groupProb float64) *uncertain.Table {
	n := 1 + r.Intn(maxN)
	tab := uncertain.NewTable()
	scorePool := []float64{1, 2, 3, 5, 8, 13, 21, 34}
	for i := 0; i < n; i++ {
		var score float64
		if r.Float64() < tieProb {
			score = scorePool[r.Intn(4)] // few distinct values: many ties
		} else {
			score = scorePool[r.Intn(len(scorePool))] + r.Float64()
		}
		group := ""
		if r.Float64() < groupProb {
			group = string(rune('a' + r.Intn(3)))
		}
		prob := 0.05 + 0.28*r.Float64() // keeps group sums ≤ 1 for ≤ 3 members
		tab.Add(uncertain.Tuple{ID: "t", Score: score, Prob: prob, Group: group})
	}
	return tab
}

// TestRandomizedCrossCheck is the central correctness test: on hundreds of
// random tables spanning independent/ME/tied regimes, all three algorithms
// in exact mode must agree with the possible-worlds oracle line by line, and
// the recorded vector per line must achieve the maximum exact probability
// among vectors with that score.
func TestRandomizedCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(20090629)) // SIGMOD'09 opening day
	regimes := []struct {
		name               string
		tieProb, groupProb float64
	}{
		{"independent", 0, 0},
		{"groups", 0, 0.6},
		{"ties", 0.7, 0},
		{"ties+groups", 0.6, 0.6},
	}
	for _, reg := range regimes {
		t.Run(reg.name, func(t *testing.T) {
			for trial := 0; trial < 60; trial++ {
				tab := randomTable(r, 11, reg.tieProb, reg.groupProb)
				if tab.Validate() != nil {
					continue
				}
				p := prep(t, tab)
				k := 1 + r.Intn(4)
				exact, err := worlds.ExactDistribution(p, k, 500_000)
				if err != nil {
					continue
				}
				vecProbs, err := worlds.ExactVectorProbs(p, k, 500_000)
				if err != nil {
					t.Fatal(err)
				}
				for _, a := range algorithms() {
					res, err := a.run(p, exactParams(k))
					if err != nil {
						t.Fatalf("trial %d %s: %v", trial, a.name, err)
					}
					sameDist(t, a.name, res.Dist, exact)
					checkVectors(t, a.name, p, k, res.Dist, vecProbs)
				}
			}
		})
	}
}

// checkVectors asserts that each line's recorded vector is a real top-k
// vector whose exact probability matches the maximum among vectors with the
// line's score.
func checkVectors(t *testing.T, name string, p *uncertain.Prepared, k int, d *pmf.Dist, vecProbs map[string]float64) {
	t.Helper()
	for _, l := range d.Lines() {
		vec := l.Vec.Slice()
		if len(vec) != k {
			t.Fatalf("%s: recorded vector %v has %d tuples, want %d", name, vec, len(vec), k)
		}
		exactProb, ok := vecProbs[worlds.VecKey(vec)]
		if !ok {
			t.Fatalf("%s: recorded vector %v is never a top-%d vector", name, p.IDs(vec), k)
		}
		if math.Abs(p.TotalScore(vec)-l.Score) > 1e-9 {
			t.Fatalf("%s: vector score %v != line score %v", name, p.TotalScore(vec), l.Score)
		}
		best := 0.0
		for key, pr := range vecProbs {
			if vecScore(p, key) == l.Score || math.Abs(vecScore(p, key)-l.Score) <= 1e-9 {
				if pr > best {
					best = pr
				}
			}
		}
		if math.Abs(exactProb-best) > 1e-9 {
			t.Fatalf("%s: line %v recorded vector %v has exact prob %v, best is %v",
				name, l.Score, p.IDs(vec), exactProb, best)
		}
		if l.VecProb > exactProb+1e-9 {
			t.Fatalf("%s: recorded VecProb %v exceeds exact prob %v", name, l.VecProb, exactProb)
		}
	}
}

func vecScore(p *uncertain.Prepared, key string) float64 {
	var s float64
	start := 0
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == ',' {
			if i > start {
				pos := 0
				for _, c := range key[start:i] {
					pos = pos*10 + int(c-'0')
				}
				s += p.Tuples[pos].Score
			}
			start = i + 1
		}
	}
	return s
}

// TestBound checks the Theorem-2 bound formula.
func TestBound(t *testing.T) {
	if !math.IsInf(Bound(5, 0), 1) {
		t.Fatal("Bound with ptau=0 should be +Inf")
	}
	l := math.Log(1 / 0.001)
	want := 10 + 1 + l + math.Sqrt(l*l+2*10*l)
	if got := Bound(10, 0.001); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Bound = %v, want %v", got, want)
	}
	// Monotone in k.
	if Bound(20, 0.001) <= Bound(10, 0.001) {
		t.Fatal("Bound should grow with k")
	}
	// Monotone in 1/ptau.
	if Bound(10, 0.0001) <= Bound(10, 0.001) {
		t.Fatal("Bound should grow as ptau shrinks")
	}
}

func TestScanDepth(t *testing.T) {
	// Build a long table of independent tuples with probability 0.5.
	tab := uncertain.NewTable()
	for i := 0; i < 400; i++ {
		tab.AddIndependent("t", float64(1000-i), 0.5)
	}
	p := prep(t, tab)
	if d := ScanDepth(p, 5, 0); d != 400 {
		t.Fatalf("full scan depth = %d", d)
	}
	d5 := ScanDepth(p, 5, 0.001)
	if d5 >= 400 || d5 < 5 {
		t.Fatalf("depth(k=5) = %d", d5)
	}
	// μ(i) ≈ 0.5·i, so depth ≈ 2·Bound.
	want := int(2 * Bound(5, 0.001))
	if d5 < want-2 || d5 > want+2 {
		t.Fatalf("depth(k=5) = %d, want ≈ %d", d5, want)
	}
	// Roughly linear growth in k (Figure 9 shape).
	d10, d20, d40 := ScanDepth(p, 10, 0.001), ScanDepth(p, 20, 0.001), ScanDepth(p, 40, 0.001)
	if !(d5 < d10 && d10 < d20 && d20 < d40) {
		t.Fatalf("depths not increasing: %d %d %d %d", d5, d10, d20, d40)
	}
	ratio := float64(d40-d20) / float64(d20-d10)
	if ratio < 1.2 || ratio > 3.5 {
		t.Fatalf("depth growth not roughly linear: %d %d %d (ratio %v)", d10, d20, d40, ratio)
	}
}

func TestScanDepthTieGroupExtension(t *testing.T) {
	// High-probability head, then a large tie group straddling the cut.
	tab := uncertain.NewTable()
	for i := 0; i < 40; i++ {
		tab.AddIndependent("head", float64(100-i), 1.0)
	}
	for i := 0; i < 20; i++ {
		tab.AddIndependent("tie", 10, 0.5)
	}
	p := prep(t, tab)
	d := ScanDepth(p, 2, 0.01)
	if d <= 40 {
		t.Skipf("cut fell before the tie group (depth %d); extension not exercised", d)
	}
	if d != 60 {
		t.Fatalf("depth = %d, want 60 (cut extended to the end of the tie group)", d)
	}
}

// TestScanDepthSafety: with a small positive threshold the truncated
// distribution stays close to the exact one.
func TestScanDepthSafety(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		tab := randomTable(r, 12, 0.3, 0.4)
		if tab.Validate() != nil {
			continue
		}
		p := prep(t, tab)
		k := 1 + r.Intn(3)
		exact, err := worlds.ExactDistribution(p, k, 500_000)
		if err != nil || exact.IsEmpty() {
			continue
		}
		res, err := Distribution(p, Params{K: k, Threshold: 1e-6, MaxLines: 0, TrackVectors: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Dist.TotalMass()-exact.TotalMass()) > 1e-3 {
			t.Fatalf("trial %d: mass %v vs exact %v", trial, res.Dist.TotalMass(), exact.TotalMass())
		}
	}
}

func TestParamValidation(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	cases := []Params{
		{K: 0},
		{K: 2, Threshold: -0.1},
		{K: 2, Threshold: 1},
		{K: 2, MaxLines: -1},
	}
	for _, a := range algorithms() {
		for i, bad := range cases {
			if _, err := a.run(p, bad); err == nil {
				t.Fatalf("%s case %d: expected error", a.name, i)
			}
		}
		if _, err := a.run(nil, Params{K: 1}); err == nil {
			t.Fatalf("%s: nil table should error", a.name)
		}
	}
}

func TestKGreaterThanN(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	for _, a := range algorithms() {
		res, err := a.run(p, exactParams(20))
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if !res.Dist.IsEmpty() {
			t.Fatalf("%s: k > n should give an empty distribution", a.name)
		}
	}
}

func TestKEqualsOne(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	exact, err := worlds.ExactDistribution(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algorithms() {
		res, err := a.run(p, exactParams(1))
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		sameDist(t, a.name, res.Dist, exact)
	}
	// Top-1 score is 125 (T7 present) with probability 0.3.
	if pr := exact.TailProb(124); math.Abs(pr-0.3) > 1e-12 {
		t.Fatalf("Pr(top-1 = 125) = %v", pr)
	}
}

func TestBudgetExceeded(t *testing.T) {
	tab := uncertain.NewTable()
	for i := 0; i < 24; i++ {
		tab.AddIndependent("t", float64(100-i), 0.5)
	}
	p := prep(t, tab)
	params := exactParams(6)
	params.MaxStates = 50
	if _, err := StateExpansion(p, params); err != ErrBudgetExceeded {
		t.Fatalf("StateExpansion err = %v, want ErrBudgetExceeded", err)
	}
	if _, err := KCombo(p, params); err != ErrBudgetExceeded {
		t.Fatalf("KCombo err = %v, want ErrBudgetExceeded", err)
	}
}

// TestCoalescedDPAccuracy: with a line cap the DP result stays close to the
// exact distribution in Wasserstein distance and preserves total mass.
func TestCoalescedDPAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tab := uncertain.NewTable()
	for i := 0; i < 40; i++ {
		tab.AddIndependent("t", 50+50*r.Float64(), 0.1+0.8*r.Float64())
	}
	p := prep(t, tab)
	exactRes, err := Distribution(p, exactParams(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, maxLines := range []int{25, 50, 100} {
		res, err := Distribution(p, Params{K: 5, MaxLines: maxLines, TrackVectors: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist.Len() > maxLines {
			t.Fatalf("maxLines=%d: %d lines", maxLines, res.Dist.Len())
		}
		if math.Abs(res.Dist.TotalMass()-exactRes.Dist.TotalMass()) > 1e-9 {
			t.Fatalf("maxLines=%d: mass %v vs %v", maxLines, res.Dist.TotalMass(), exactRes.Dist.TotalMass())
		}
		w := exactRes.Dist.Wasserstein1(res.Dist)
		if delta := exactRes.Dist.Span() / float64(maxLines); w > 8*delta {
			t.Fatalf("maxLines=%d: W1 = %v > 8δ = %v", maxLines, w, 8*delta)
		}
		// U-Topk must survive coalescing (merges keep the better vector).
		le, _ := exactRes.Dist.MaxVecProbLine()
		lc, _ := res.Dist.MaxVecProbLine()
		if math.Abs(le.VecProb-lc.VecProb) > 1e-9 {
			t.Fatalf("maxLines=%d: U-Topk prob %v vs exact %v", maxLines, lc.VecProb, le.VecProb)
		}
	}
}

// TestUnitsCounter checks the §3.3.3 decomposition count on the soldier
// table: lead region {T7,T3}, non-leads T4, T2, T6, lead region {T5,T1}.
func TestUnitsCounter(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	res, err := Distribution(p, exactParams(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Units != 5 {
		t.Fatalf("units = %d, want 5", res.Units)
	}
	if res.ScanDepth != 7 {
		t.Fatalf("scan depth = %d, want 7", res.ScanDepth)
	}
	if res.Cells <= 0 {
		t.Fatal("cells counter not incremented")
	}
}

// TestLargerCrossCheck exercises a mid-size table (beyond toy size but still
// enumerable) with mixed groups and ties at a larger k.
func TestLargerCrossCheck(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	tab := uncertain.NewTable()
	for i := 0; i < 18; i++ {
		group := ""
		if i%3 == 0 {
			group = string(rune('a' + i/6))
		}
		score := float64(5 * (1 + r.Intn(8)))
		tab.Add(uncertain.Tuple{ID: "t", Score: score, Prob: 0.05 + 0.25*r.Float64(), Group: group})
	}
	p := prep(t, tab)
	for _, k := range []int{3, 6} {
		exact, err := worlds.ExactDistribution(p, k, 5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Distribution(p, exactParams(k))
		if err != nil {
			t.Fatal(err)
		}
		sameDist(t, "MainDP", res.Dist, exact)
		se, err := StateExpansion(p, exactParams(k))
		if err != nil {
			t.Fatal(err)
		}
		sameDist(t, "StateExpansion", se.Dist, exact)
	}
}
