// Package core implements §3 of the paper: the algorithms that compute the
// score distribution of top-k tuple vectors of an uncertain table.
//
// Three algorithms are provided, matching the paper:
//
//   - Distribution — the main dynamic program (§3.2), extended to mutually
//     exclusive tuples via rule tuples, blocked exit points and per-unit runs
//     (§3.3), and to score ties via the (score, probability) sort order
//     (§3.4). O(kmn) with constant-size distributions after line coalescing.
//   - StateExpansion — the naive state-space expansion of Figure 4,
//     exponential in the scan depth, kept exact under ME rules by telescoping
//     conditional skip/take factors.
//   - KCombo — enumeration of all k-combinations of the first n tuples,
//     O(n^k), with group-aware skip factors.
//
// All three consume a Prepared table and agree exactly (up to floating-point
// ε) when run with Threshold 0 and no line coalescing; the test suite
// verifies this against the possible-worlds oracle.
package core

import (
	"errors"
	"fmt"
	"math"

	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// DefaultMaxStates bounds the work of the naive baseline algorithms
// (StateExpansion states, k-Combo combinations) unless overridden.
const DefaultMaxStates = 10_000_000

// Params configures a distribution computation.
type Params struct {
	// K is the number of tuples in a top-k vector. Must be ≥ 1.
	K int
	// Threshold is the paper's pτ: top-k vectors with probability below it
	// may be dropped, and the Theorem-2 scan depth is derived from it.
	// 0 means exact (full scan, no pruning).
	Threshold float64
	// MaxLines caps the number of lines kept in any intermediate or final
	// distribution (the paper's c'); 0 means unlimited (exact).
	MaxLines int
	// CoalesceMode selects how coalesced line pairs pick their score.
	CoalesceMode pmf.CoalesceMode
	// TrackVectors enables recording a representative (highest-probability)
	// top-k vector per distribution line, as required by c-Typical-Topk.
	TrackVectors bool
	// MaxStates guards the naive algorithms; 0 uses DefaultMaxStates.
	MaxStates int
	// Parallelism is the number of goroutines the main algorithm may use to
	// process dynamic-programming units concurrently (they are independent;
	// the per-unit distributions merge deterministically in unit order, so
	// the result is bit-identical to serial execution).
	//
	// 0 auto-tunes: queries whose estimated DP work (scan depth × K) is
	// large enough fan out over min(GOMAXPROCS, units) workers, small
	// queries run serially (worker hand-off would cost more than it saves).
	// 1 or negative forces serial execution; values ≥ 2 set the worker
	// count explicitly.
	Parallelism int
}

func (p Params) validate(tbl *uncertain.Prepared) error {
	if tbl == nil {
		return errors.New("core: nil prepared table")
	}
	if p.K < 1 {
		return fmt.Errorf("core: k must be ≥ 1, got %d", p.K)
	}
	if p.Threshold < 0 || p.Threshold >= 1 {
		return fmt.Errorf("core: threshold must be in [0, 1), got %v", p.Threshold)
	}
	if p.MaxLines < 0 {
		return fmt.Errorf("core: max lines must be ≥ 0, got %d", p.MaxLines)
	}
	return nil
}

func (p Params) maxStates() int {
	if p.MaxStates > 0 {
		return p.MaxStates
	}
	return DefaultMaxStates
}

// Result carries a computed score distribution and the work counters used by
// the empirical study.
type Result struct {
	// Dist is the score distribution of top-k vectors. Its total mass is the
	// probability that a top-k vector exists (at least k tuples appear)
	// within the scanned prefix; it is not normalized.
	Dist *pmf.Dist
	// ScanDepth is the number of tuples n examined (Theorem 2).
	ScanDepth int
	// Units is the number of dynamic-programming runs (lead-tuple regions
	// plus non-lead tuples) performed by the main algorithm.
	Units int
	// Cells counts DP cell computations (main algorithm), expanded states
	// (StateExpansion), or enumerated combinations (KCombo).
	Cells int
}

// ErrBudgetExceeded is returned when a naive algorithm exceeds MaxStates.
var ErrBudgetExceeded = errors.New("core: state budget exceeded")

// Bound returns the right-hand side of the Theorem-2 stopping condition:
// k + 1 + ln(1/pτ) + sqrt(ln²(1/pτ) + 2k·ln(1/pτ)). For ptau ≤ 0 it is +Inf
// (never stop early).
func Bound(k int, ptau float64) float64 {
	if ptau <= 0 {
		return math.Inf(1)
	}
	l := math.Log(1 / ptau)
	return float64(k) + 1 + l + math.Sqrt(l*l+2*float64(k)*l)
}

// VectorProb returns the exact probability that the k-tuple vector at the
// given prepared positions is a top-k vector of the table:
//
//	Π_{t ∈ v} Pr(t) × Π_{g untouched by v} (1 − mass of g's tuples ranked
//	strictly above v's boundary score),
//
// where the boundary score is the minimum score in v. Tuples tied with the
// boundary may appear freely (the world then merely has several top-k
// vectors, Theorem 1). Returns 0 for vectors violating an ME rule.
func VectorProb(p *uncertain.Prepared, vec []int) float64 {
	if len(vec) == 0 {
		return 0
	}
	bound := math.Inf(1)
	taken := make(map[int]bool, len(vec))
	prob := 1.0
	for _, pos := range vec {
		tp := p.Tuples[pos]
		if taken[tp.Group] {
			return 0
		}
		taken[tp.Group] = true
		prob *= tp.Prob
		if tp.Score < bound {
			bound = tp.Score
		}
	}
	seen := make(map[int]bool)
	for pos := 0; pos < p.Len(); pos++ {
		tp := p.Tuples[pos]
		if tp.Score <= bound {
			break // rank order: no further tuples outrank the boundary
		}
		if taken[tp.Group] || seen[tp.Group] {
			continue
		}
		seen[tp.Group] = true
		var mass float64
		for _, m := range p.GroupMembers(tp.Group) {
			if p.Tuples[m].Score > bound {
				mass += p.Tuples[m].Prob
			}
		}
		if f := 1 - mass; f > 0 {
			prob *= f
		} else {
			return 0
		}
	}
	return prob
}

// ScanDepth returns the number of tuples n that must be examined, per
// Theorem 2: the scan of tuples in rank order may stop at the first tuple t
// whose μ(t) — the total probability of higher-ranked tuples outside t's ME
// group — reaches Bound(k, ptau). The cut is then extended to the end of the
// enclosing tie group, since configurations never split a tie group.
func ScanDepth(p *uncertain.Prepared, k int, ptau float64) int {
	n := p.Len()
	bound := Bound(k, ptau)
	if math.IsInf(bound, 1) {
		return n
	}
	depth := n
	for i := 0; i < n; i++ {
		tp := p.Tuples[i]
		// PrefixProbability is precomputed once per Prepared, so repeated
		// queries and batches share the scan's running sums.
		mu := p.PrefixProbability(i) - p.PrefixMass(tp.Group, i)
		if mu >= bound {
			depth = i
			break
		}
	}
	if depth == 0 {
		return 0
	}
	// Never cut a tie group: include all peers of the last needed tuple.
	_, end := p.TieGroup(depth - 1)
	if end > depth {
		depth = end
	}
	return depth
}
