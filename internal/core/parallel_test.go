package core

import (
	"math/rand"
	"testing"

	"probtopk/internal/cartel"
	"probtopk/internal/uncertain"
)

// TestParallelMatchesSerial: the worker-pool execution must produce a
// line-identical distribution and the same counters as serial execution.
func TestParallelMatchesSerial(t *testing.T) {
	area := cartel.GenerateArea(cartel.Config{Segments: 120, Seed: 11})
	tab, err := area.CongestionTable(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := uncertain.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{5, 20} {
		params := Params{K: k, Threshold: 0.001, MaxLines: 100, TrackVectors: true}
		serial, err := Distribution(p, params)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 16} {
			params.Parallelism = workers
			par, err := Distribution(p, params)
			if err != nil {
				t.Fatal(err)
			}
			if par.Cells != serial.Cells || par.Units != serial.Units || par.ScanDepth != serial.ScanDepth {
				t.Fatalf("k=%d workers=%d: counters differ: %+v vs %+v", k, workers, par, serial)
			}
			sameDist(t, "parallel", par.Dist, serial.Dist)
			ls, _ := serial.Dist.MaxVecProbLine()
			lp, _ := par.Dist.MaxVecProbLine()
			if ls.VecProb != lp.VecProb || ls.Score != lp.Score {
				t.Fatalf("k=%d workers=%d: U-Topk differs", k, workers)
			}
		}
	}
}

// TestParallelSmallTables: degenerate worker counts and tiny tables.
func TestParallelSmallTables(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		tab := randomTable(r, 9, 0.5, 0.5)
		if tab.Validate() != nil {
			continue
		}
		p, err := uncertain.Prepare(tab)
		if err != nil {
			t.Fatal(err)
		}
		params := exactParams(1 + r.Intn(3))
		serial, err := Distribution(p, params)
		if err != nil {
			t.Fatal(err)
		}
		params.Parallelism = 8
		par, err := Distribution(p, params)
		if err != nil {
			t.Fatal(err)
		}
		sameDist(t, "parallel-small", par.Dist, serial.Dist)
	}
}
