package core

import (
	"sync"

	"probtopk/internal/pmf"
)

// maxFreeDists bounds the number of recycled distributions a Scratch retains
// between queries, so a one-off huge query cannot pin its working set in the
// pool forever.
const maxFreeDists = 64

// Scratch is the reusable per-query working state of the main dynamic
// program: the fused combine/coalesce buffers, the closest-pair coalescing
// buffers, and a free list of recycled intermediate distributions. A zero
// Scratch is ready to use; a Scratch must not be used concurrently.
//
// Steady-state query serving obtains Scratches from a process-wide sync.Pool
// via GetScratch/PutScratch, which makes repeated queries allocate near-zero:
// the DP's intermediate distributions, grid cells and heap storage all come
// from earlier queries.
type Scratch struct {
	grid pmf.GridCombiner
	co   pmf.Coalescer
	free []*pmf.Dist
	exit *pmf.Dist
	// arena backs every vector node the DP allocates for one query
	// (grid.Arena points at it while a query runs). DistributionScratch
	// detaches the surviving vectors from the result and resets the arena
	// before returning, so the hundreds of thousands of intermediate nodes
	// per query never reach the garbage collector.
	arena pmf.VectorArena
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch returns a Scratch from the process-wide pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns s to the process-wide pool.
func PutScratch(s *Scratch) {
	if s != nil {
		scratchPool.Put(s)
	}
}

// getDist pops a recycled distribution, or returns nil when none is free
// (the combiner then allocates a fresh one).
func (s *Scratch) getDist() *pmf.Dist {
	if n := len(s.free); n > 0 {
		d := s.free[n-1]
		s.free = s.free[:n-1]
		return d
	}
	return nil
}

// putDist recycles a distribution whose contents are no longer reachable.
func (s *Scratch) putDist(d *pmf.Dist) {
	if d == nil || len(s.free) >= maxFreeDists {
		return
	}
	d.Reset()
	s.free = append(s.free, d)
}

// exitPoint returns the shared single-line distribution {(0, 1)} used as the
// take source of enabled exit rows. It is read-only for the DP, so one
// instance per Scratch suffices.
func (s *Scratch) exitPoint() *pmf.Dist {
	if s.exit == nil {
		s.exit = pmf.PointVec(0, 1, nil, 1)
	}
	return s.exit
}
