package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// TestDistributionInvariants: on arbitrary random tables, the main DP's
// output is sorted with positive probabilities, total mass is at most 1 and
// equals Pr(≥ k tuples co-exist), and recorded vectors are ME-consistent
// with exactly k members in rank order.
func TestDistributionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randomTable(r, 14, 0.4, 0.5)
		if tab.Validate() != nil {
			return true
		}
		p, err := uncertain.Prepare(tab)
		if err != nil {
			return false
		}
		k := 1 + r.Intn(5)
		res, err := Distribution(p, exactParams(k))
		if err != nil {
			return false
		}
		lines := res.Dist.Lines()
		if !sort.SliceIsSorted(lines, func(i, j int) bool { return lines[i].Score < lines[j].Score }) {
			return false
		}
		mass := res.Dist.TotalMass()
		if mass < -1e-12 || mass > 1+1e-9 {
			return false
		}
		for _, l := range lines {
			if l.Prob <= 0 || l.VecProb <= 0 {
				return false
			}
			if l.VecProb > l.Prob+1e-9 && l.Prob > 0 {
				// A single vector's probability can exceed its own score
				// line's mass only via tie-sharing across worlds; it can
				// never exceed 1.
				if l.VecProb > 1+1e-12 {
					return false
				}
			}
			vec := l.Vec.Slice()
			if len(vec) != k {
				return false
			}
			groups := map[int]bool{}
			for idx, pos := range vec {
				if idx > 0 && pos <= vec[idx-1] {
					return false // not in strict rank order
				}
				g := p.Tuples[pos].Group
				if groups[g] {
					return false // violates an ME rule
				}
				groups[g] = true
			}
			// The recorded vector's exact probability matches the closed
			// form used for tracking.
			if math.Abs(VectorProb(p, vec)-l.VecProb) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestScanDepthProperties: depth is monotone non-decreasing in k, monotone
// non-increasing in pτ, and never exceeds the table size.
func TestScanDepthProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randomTable(r, 60, 0.3, 0.4)
		if tab.Validate() != nil {
			return true
		}
		p, err := uncertain.Prepare(tab)
		if err != nil {
			return false
		}
		prev := 0
		for k := 1; k <= 20; k += 3 {
			d := ScanDepth(p, k, 0.01)
			if d < prev || d > p.Len() {
				return false
			}
			prev = d
		}
		loose := ScanDepth(p, 5, 0.1)
		tight := ScanDepth(p, 5, 0.0001)
		return loose <= tight && tight <= p.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestThresholdMonotonicity: raising pτ can only drop mass, never add it,
// and the surviving distribution stays within the exact support range.
func TestThresholdMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		tab := randomTable(r, 12, 0.3, 0.4)
		if tab.Validate() != nil {
			continue
		}
		p, err := uncertain.Prepare(tab)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + r.Intn(3)
		exact, err := Distribution(p, exactParams(k))
		if err != nil {
			t.Fatal(err)
		}
		prevMass := exact.Dist.TotalMass()
		for _, ptau := range []float64{1e-6, 1e-3, 1e-1} {
			res, err := Distribution(p, Params{K: k, Threshold: ptau, TrackVectors: true})
			if err != nil {
				t.Fatal(err)
			}
			m := res.Dist.TotalMass()
			if m > prevMass+1e-9 {
				t.Fatalf("trial %d: mass grew from %v to %v at ptau=%v", trial, prevMass, m, ptau)
			}
			prevMass = m
			if res.Dist.IsEmpty() {
				continue
			}
			if res.Dist.Min() < exact.Dist.Min()-1e-9 || res.Dist.Max() > exact.Dist.Max()+1e-9 {
				t.Fatalf("trial %d: truncated support [%v, %v] escapes exact [%v, %v]",
					trial, res.Dist.Min(), res.Dist.Max(), exact.Dist.Min(), exact.Dist.Max())
			}
		}
	}
}

// TestWeightedCoalescePreservesMean: with the weighted-average mode the DP's
// coalesced distribution keeps the exact mean; the paper's plain average may
// drift slightly.
func TestWeightedCoalescePreservesMean(t *testing.T) {
	r := rand.New(rand.NewSource(777))
	tab := uncertain.NewTable()
	for i := 0; i < 30; i++ {
		tab.AddIndependent("t", 100*r.Float64(), 0.2+0.6*r.Float64())
	}
	p, err := uncertain.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Distribution(p, exactParams(4))
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Distribution(p, Params{K: 4, MaxLines: 20, TrackVectors: true,
		CoalesceMode: pmf.CoalesceWeightedAverage})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted averaging preserves the mean through shifts and scales.
	if diff := math.Abs(weighted.Dist.Mean() - exact.Dist.Mean()); diff > 1e-6*exact.Dist.Mean() {
		t.Fatalf("weighted coalescing moved the mean by %v", diff)
	}
}
