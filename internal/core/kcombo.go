package core

import (
	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// KCombo implements the paper's second baseline (§3.1): iterate through all
// k-combinations of the first n tuples (n from Theorem 2) in lexicographic
// order, excluding combinations that violate the mutual exclusion rules, and
// compute each combination's total score and probability of being the top-k
// vector. Cost O(n^k).
//
// The probability of a combination v with deepest position q is
//
//	Π_{t ∈ v} Pr(t) × Π_{g untouched by v} (1 − mass of g's members above q),
//
// the configuration sub-event probability of Lemma 1, identical to the
// semantics of the other two algorithms under ties. Subtrees whose partial
// probability product is already at or below Threshold are pruned (the skip
// factors can only shrink the product).
func KCombo(p *uncertain.Prepared, params Params) (*Result, error) {
	if err := params.validate(p); err != nil {
		return nil, err
	}
	n := ScanDepth(p, params.K, params.Threshold)
	res := &Result{ScanDepth: n}
	budget := params.maxStates()
	k := params.K

	var lines []pmf.Line
	combo := make([]int, k)
	// Stamp arrays avoid per-combination allocation.
	groupStamp := make([]int, p.NumGroups())
	for i := range groupStamp {
		groupStamp[i] = -1
	}
	stamp := 0

	emit := func() {
		q := combo[k-1]
		stamp++
		prob := 1.0
		for _, i := range combo {
			g := p.Tuples[i].Group
			if groupStamp[g] == stamp {
				return // violates an ME rule
			}
			groupStamp[g] = stamp
			prob *= p.Tuples[i].Prob
		}
		// Skip factors of every group untouched by the combination that has
		// members ranked above q.
		for pos := 0; pos < q; pos++ {
			g := p.Tuples[pos].Group
			if groupStamp[g] == stamp {
				continue
			}
			groupStamp[g] = stamp
			prob *= 1 - p.GroupMassBefore(g, q)
		}
		if prob <= 0 {
			return
		}
		l := pmf.Line{Score: 0, Prob: prob}
		if params.TrackVectors {
			var v *pmf.Vector
			for i := k - 1; i >= 0; i-- {
				v = v.Prepend(combo[i])
			}
			l.Vec = v
			l.VecProb = VectorProb(p, combo)
			l.VecBound = p.Tuples[q].Score
		}
		for _, i := range combo {
			l.Score += p.Tuples[i].Score
		}
		lines = append(lines, l)
	}

	overBudget := false
	var rec func(start, depth int, probUB float64)
	rec = func(start, depth int, probUB float64) {
		if overBudget {
			return
		}
		if depth == k {
			emit()
			return
		}
		for i := start; i <= n-(k-depth) && !overBudget; i++ {
			// Every visited enumeration node counts against the budget —
			// pruned subtrees still cost their frontier.
			res.Cells++
			if res.Cells > budget {
				overBudget = true
				return
			}
			ub := probUB * p.Tuples[i].Prob
			if ub <= params.Threshold && params.Threshold > 0 {
				continue
			}
			combo[depth] = i
			rec(i+1, depth+1, ub)
		}
	}
	rec(0, 0, 1)
	if overBudget {
		return nil, ErrBudgetExceeded
	}
	res.Dist = pmf.FromLines(lines)
	res.Dist.Coalesce(params.MaxLines, params.CoalesceMode)
	return res, nil
}
