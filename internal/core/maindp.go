package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// row is one row of a unit's dynamic-programming table: either a plain
// uncertain tuple (one take branch) or a compressed rule tuple (§3.3.1, one
// take branch per constituent tuple). exit marks rows at which a top-k
// vector may end (the enabled exit points of §3.3.2/§3.3.3).
type row struct {
	skipFactor float64
	branches   []pmf.TakeBranch
	exit       bool
}

// skipTrue returns the boundary-aware skip factor for vector-probability
// tracking: the probability that this row contributes no tuple ranked
// strictly above the given boundary score. Members tied with the boundary
// are free to appear — the recorded vector stays a top-k vector regardless
// (Theorem 1) — which is what makes the tracked VecProb the exact vector
// probability even when ties and ME groups interact.
func (r row) skipTrue(bound float64) float64 {
	s := 1.0
	for _, b := range r.branches {
		if b.Shift > bound {
			s -= b.Factor
		}
	}
	if s < 0 {
		return 0
	}
	return s
}

// Distribution computes the score distribution of top-k vectors with the
// paper's main dynamic-programming algorithm (§3.2–§3.4).
//
// The table is scanned to the Theorem-2 depth n, decomposed into units —
// maximal lead-tuple regions and individual non-lead tuples — and one DP is
// run per unit, conditioning on the unit containing the vector's k-th (last)
// tuple. ME groups above the unit are compressed into rule tuples; exit
// points are enabled only at the unit's rows. The per-unit distributions are
// merged and coalesced to Params.MaxLines.
//
// The per-query working state comes from the process-wide Scratch pool, so
// steady-state repeated queries allocate near-zero.
func Distribution(p *uncertain.Prepared, params Params) (*Result, error) {
	s := GetScratch()
	defer PutScratch(s)
	return DistributionScratch(p, params, s)
}

// DistributionScratch is Distribution running against an explicit Scratch,
// for callers (the query engine, the sliding window) that manage scratch
// lifetime themselves. The result is bit-identical to running with a fresh
// zero Scratch.
func DistributionScratch(p *uncertain.Prepared, params Params, s *Scratch) (*Result, error) {
	if err := params.validate(p); err != nil {
		return nil, err
	}
	n := ScanDepth(p, params.K, params.Threshold)
	res := &Result{ScanDepth: n}
	units := p.UnitsPrefix(n)
	res.Units = len(units)
	var perUnit []*pmf.Dist
	if workers := dpWorkers(params, len(units), n); workers > 1 {
		perUnit = runUnitsParallel(p, units, params, workers, &res.Cells)
	} else {
		s.grid.Arena = &s.arena
		perUnit = make([]*pmf.Dist, len(units))
		for i, u := range units {
			perUnit[i] = runUnitDP(buildUnitRows(p, u), params, s, &res.Cells)
		}
	}
	dists := perUnit[:0]
	for _, d := range perUnit {
		if !d.IsEmpty() {
			dists = append(dists, d)
		}
	}
	res.Dist = pmf.MergeAll(dists)
	// The per-unit distributions are dead after the merge (MergeAll always
	// returns fresh storage); recycle them for the next query. dists is the
	// compacted filter of perUnit, so each distribution appears exactly once.
	for _, d := range dists {
		if d != res.Dist {
			s.putDist(d)
		}
	}
	s.co.Coalesce(res.Dist, params.MaxLines, params.CoalesceMode)
	if params.TrackVectors {
		res.Dist.NormalizeVectors()
	}
	// The DP allocated its vector nodes from the scratch arena; the result
	// outlives this call, so copy its surviving vectors (at most
	// MaxLines × k nodes — a sliver of what the DP churned) out of the arena
	// before the arena is recycled for the next query.
	res.Dist.DetachVectors()
	s.arena.Reset()
	return res, nil
}

// autoParallelWork is the minimum DP work estimate (scan depth × k,
// proportional to the cell count) above which Parallelism == 0 fans out.
// Below it a query completes in well under a millisecond, and goroutine
// hand-off plus per-worker scratch traffic outweigh the concurrency win.
const autoParallelWork = 512

// dpWorkers resolves Params.Parallelism to a worker count: ≥ 2 is an
// explicit fan-out, 1 or negative forces serial, and 0 auto-tunes — serial
// for small queries (work below autoParallelWork), otherwise one worker per
// processor, never more than one per unit.
func dpWorkers(params Params, units, scanDepth int) int {
	w := params.Parallelism
	if w == 0 {
		if scanDepth*params.K < autoParallelWork {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > units {
		w = units
	}
	if w < 2 {
		return 1
	}
	return w
}

// runUnitsParallel fans the independent unit DPs out over a bounded worker
// pool. Results are collected by unit index, so the merged distribution is
// identical to the serial one; cell counts are accumulated atomically.
//
// Each worker owns a pooled Scratch whose arena backs the vector nodes of
// the units it runs, so every per-unit result is detached from that arena
// (a ≤ MaxLines × k copy) before the worker releases the Scratch.
func runUnitsParallel(p *uncertain.Prepared, units []uncertain.Unit, params Params, workers int, cells *int) []*pmf.Dist {
	perUnit := make([]*pmf.Dist, len(units))
	var counted int64
	var wg sync.WaitGroup
	wg.Add(workers)
	worker := func(claim func() int) {
		defer wg.Done()
		ws := GetScratch()
		defer PutScratch(ws)
		ws.grid.Arena = &ws.arena
		local := 0
		for {
			i := claim()
			if i < 0 {
				break
			}
			d := runUnitDP(buildUnitRows(p, units[i]), params, ws, &local)
			d.DetachVectors()
			perUnit[i] = d
		}
		ws.arena.Reset()
		atomic.AddInt64(&counted, int64(local))
	}
	if len(units) > 4*workers {
		// Many units per worker: a shared atomic cursor is cheaper than
		// channel hand-off at this grain.
		cursor := int64(-1)
		claim := func() int {
			if i := int(atomic.AddInt64(&cursor, 1)); i < len(units) {
				return i
			}
			return -1
		}
		for w := 0; w < workers; w++ {
			go worker(claim)
		}
	} else {
		// Buffered to capacity: the producer below never blocks handing out
		// unit indices.
		next := make(chan int, len(units))
		for i := range units {
			next <- i
		}
		close(next)
		claim := func() int {
			if i, ok := <-next; ok {
				return i
			}
			return -1
		}
		for w := 0; w < workers; w++ {
			go worker(claim)
		}
	}
	wg.Wait()
	*cells += int(counted)
	return perUnit
}

// buildUnitRows constructs the DP rows for one unit.
//
// For a lead-tuple region [a, b): the rows are the compressed groups of
// positions [0, a) followed by the region's tuples, each an enabled exit
// point. Region tuples are lead tuples, so every ME constraint that could
// affect a vector ending inside the region is confined to positions < a.
//
// For a non-lead tuple q: the rows are the compressed groups of positions
// [0, q) with q's own group removed (its higher-ranked mates must simply not
// appear, which conditioning on q's presence already implies), followed by
// the single row q, the only enabled exit point.
func buildUnitRows(p *uncertain.Prepared, u uncertain.Unit) []row {
	var rows []row
	var skipGroup = -1
	if u.Kind == uncertain.UnitNonLead {
		skipGroup = p.Tuples[u.Start].Group
	}
	seen := make(map[int]bool)
	for pos := 0; pos < u.Start; pos++ {
		g := p.Tuples[pos].Group
		if g == skipGroup || seen[g] {
			continue
		}
		seen[g] = true
		var r row
		mass := 0.0
		for _, m := range p.GroupMembers(g) {
			if m >= u.Start {
				break
			}
			tp := p.Tuples[m]
			r.branches = append(r.branches, pmf.TakeBranch{Shift: tp.Score, Factor: tp.Prob, Tuple: m})
			mass += tp.Prob
		}
		if r.skipFactor = 1 - mass; r.skipFactor < 0 {
			r.skipFactor = 0
		}
		rows = append(rows, r)
	}
	for pos := u.Start; pos < u.End; pos++ {
		tp := p.Tuples[pos]
		rows = append(rows, row{
			skipFactor: 1 - tp.Prob,
			branches:   []pmf.TakeBranch{{Shift: tp.Score, Factor: tp.Prob, Tuple: pos}},
			exit:       true,
		})
	}
	return rows
}

// runUnitDP executes one bottom-up dynamic program over rows.
//
// After processing rows[i..], dists[j] is the score distribution of choosing
// j tuples from those rows such that the deepest chosen row is an exit row;
// the probability of a line is the product of the chosen tuples'
// probabilities and the skip factors of all unchosen rows above the deepest
// chosen one — exactly the configuration sub-event semantics of Theorem 3.
// The answer is dists[k] after the top row.
func runUnitDP(rows []row, params Params, s *Scratch, cells *int) *pmf.Dist {
	k := params.K
	dists := make([]*pmf.Dist, k+1)
	next := make([]*pmf.Dist, k+1)
	exitPoint := s.exitPoint()
	// pool recycles the previous generation's distributions: after a row is
	// processed, the old column entries are unreachable and their line
	// storage can back the next row's outputs. When the local pool is dry,
	// distributions recycled from earlier units and queries (the Scratch
	// free list) are used before allocating.
	var pool []*pmf.Dist
	fromPool := func() *pmf.Dist {
		if n := len(pool); n > 0 {
			d := pool[n-1]
			pool = pool[:n-1]
			return d
		}
		return s.getDist()
	}
	// One closure for the whole unit: binding r.skipTrue per row would
	// allocate a method value (a copy of the row) on every iteration.
	var cur *row
	var adjust func(float64) float64
	if params.TrackVectors {
		adjust = func(bound float64) float64 { return cur.skipTrue(bound) }
	}
	for i := len(rows) - 1; i >= 0; i-- {
		cur = &rows[i]
		r := cur
		for j := k; j >= 1; j-- {
			var take *pmf.Dist
			if j == 1 {
				if r.exit {
					take = exitPoint
				}
			} else {
				take = dists[j-1]
			}
			d := s.grid.Combine(fromPool(), dists[j], r.skipFactor, take, r.branches,
				params.MaxLines, params.CoalesceMode, params.TrackVectors, adjust)
			next[j] = d
			*cells++
		}
		for j := 1; j <= k; j++ {
			if dists[j] != nil {
				pool = append(pool, dists[j])
			}
			dists[j], next[j] = next[j], nil
		}
	}
	// Everything except the answer column is dead: recycle it.
	for _, d := range pool {
		s.putDist(d)
	}
	for j := 1; j < k; j++ {
		s.putDist(dists[j])
	}
	if dists[k] == nil {
		return pmf.New()
	}
	return dists[k]
}
