package core

import (
	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// groupSet is a persistent (structurally shared) set of ME group ids,
// recording which groups have contributed a tuple to a state's vector. A
// state can hold at most k−1 entries before it exits, so linear lookups are
// acceptable for the naive baseline.
type groupSet struct {
	group int
	next  *groupSet
}

func (s *groupSet) contains(g int) bool {
	for ; s != nil; s = s.next {
		if s.group == g {
			return true
		}
	}
	return false
}

func (s *groupSet) add(g int) *groupSet { return &groupSet{group: g, next: s} }

// seState is one state of the StateExpansion algorithm: a partial vector of
// taken tuples over the processed prefix.
type seState struct {
	score float64
	prob  float64
	count int
	vec   *pmf.Vector // taken positions, most recent at the head
	taken *groupSet   // multi-member groups with a taken tuple
}

// StateExpansion implements Figure 4 of the paper: breadth-first expansion of
// take/skip states over the tuples in rank order, dropping states whose
// probability is at or below the threshold and emitting a distribution line
// whenever a state reaches k tuples.
//
// Mutual exclusion is handled exactly by conditional factors: skipping tuple
// t of group g multiplies by Pr(t absent | g's earlier members absent) =
// (1 − C − p_t)/(1 − C), and taking t multiplies by p_t/(1 − C), where C is
// g's probability mass before t. Along any complete path these factors
// telescope to the configuration probabilities of Lemma 1, so with
// Threshold 0 the result is exact.
func StateExpansion(p *uncertain.Prepared, params Params) (*Result, error) {
	if err := params.validate(p); err != nil {
		return nil, err
	}
	n := ScanDepth(p, params.K, params.Threshold)
	res := &Result{ScanDepth: n}
	budget := params.maxStates()
	var lines []pmf.Line
	emit := func(s seState) {
		l := pmf.Line{Score: s.score, Prob: s.prob}
		if params.TrackVectors {
			// Reverse the take-order list into rank order. The head of
			// s.vec is the most recent take, i.e. the vector's boundary.
			taken := s.vec.Slice()
			var v *pmf.Vector
			for _, pos := range taken {
				v = v.Prepend(pos)
			}
			l.Vec = v
			l.VecProb = VectorProb(p, taken)
			l.VecBound = p.Tuples[taken[0]].Score
		}
		lines = append(lines, l)
	}
	states := []seState{{prob: 1}}
	for i := 0; i < n && len(states) > 0; i++ {
		tp := p.Tuples[i]
		g := tp.Group
		multi := p.GroupSize(i) > 1
		var consumed float64
		if multi {
			consumed = p.PrefixMass(g, i)
		}
		next := states[:0:0]
		for _, s := range states {
			res.Cells++
			if res.Cells > budget {
				return nil, ErrBudgetExceeded
			}
			if multi && s.taken.contains(g) {
				// A mate was taken: t cannot appear; carry the state over
				// with factor 1.
				next = append(next, s)
				continue
			}
			denom := 1 - consumed
			if denom <= 0 {
				// The group is exhausted above this point on this path;
				// unreachable for valid tables, but guard against FP noise.
				next = append(next, s)
				continue
			}
			takeProb := s.prob * tp.Prob / denom
			skipProb := s.prob * (denom - tp.Prob) / denom
			take := seState{
				score: s.score + tp.Score,
				prob:  takeProb,
				count: s.count + 1,
				taken: s.taken,
			}
			if params.TrackVectors {
				take.vec = s.vec.Prepend(i)
			}
			if multi {
				take.taken = s.taken.add(g)
			}
			if take.count == params.K {
				emit(take)
			} else if take.prob > params.Threshold {
				next = append(next, take)
			}
			if skipProb > params.Threshold {
				s.prob = skipProb
				next = append(next, s)
			}
		}
		states = next
	}
	res.Dist = pmf.FromLines(lines)
	res.Dist.Coalesce(params.MaxLines, params.CoalesceMode)
	return res, nil
}
