package core

import (
	"testing"

	"probtopk/internal/synth"
	"probtopk/internal/uncertain"
)

// BenchmarkColdK10 is the dynamic program in isolation — the serving
// figure's cold k=10 point minus HTTP and JSON — on the synthetic Seed-1
// workload. The SoA+arena kernels hold a cold query at a few thousand
// allocations, and a regression here shows up long before the serving gate
// trips.
func BenchmarkColdK10(b *testing.B) {
	tab, err := synth.Generate(synth.Config{Seed: 1}.WithDefaults())
	if err != nil {
		b.Fatal(err)
	}
	p, err := uncertain.Prepare(tab)
	if err != nil {
		b.Fatal(err)
	}
	params := Params{K: 10, Threshold: 0.001, MaxLines: 200, TrackVectors: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Distribution(p, params); err != nil {
			b.Fatal(err)
		}
	}
}
