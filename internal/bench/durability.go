package bench

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"probtopk/internal/persist"
	"probtopk/internal/server"
	"probtopk/internal/synth"
)

// durabilityAppends is how many appends each durability series measures,
// and durabilityWarmup how many run untimed first (segment creation, lazy
// allocations and cold caches land there, not in the figure). The sample
// count matters: the bench-compare CI gate trips on the series MEDIAN, so
// it must be stable across runs of the same build.
const (
	durabilityAppends = 100
	durabilityWarmup  = 10
)

// FigDurability measures what the durable log adds to the serving path's
// append latency: the in-memory baseline, the WAL without fsync, and the
// WAL fsyncing every record. The spread between the series is the price of
// each durability level; recovery correctness is covered by the
// crash-injection tests, this figure tracks the cost. Not a figure from
// the paper; request it with `topk-bench -fig durability`, typically with
// -json so future runs can be compared.
func FigDurability() (*Figure, error) {
	tab, err := synth.Generate(synth.Config{N: 400, Seed: 7}.WithDefaults())
	if err != nil {
		return nil, err
	}
	var tuples []server.TupleJSON
	for _, tp := range tab.Tuples() {
		tuples = append(tuples, server.TupleJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	upload, err := json.Marshal(server.TableRequest{Tuples: tuples})
	if err != nil {
		return nil, err
	}

	type mode struct {
		name    string
		durable bool
		fsync   bool
	}
	modes := []mode{
		{"append in-memory (ms)", false, false},
		{"append wal (ms)", true, false},
		{"append wal+fsync (ms)", true, true},
	}
	fig := &Figure{
		ID:    "durability",
		Title: "Append latency vs durability level (400 tuples)",
	}
	for mi, md := range modes {
		cfg := server.Config{AnswerCacheSize: -1}
		var cleanup func()
		if md.durable {
			dir, err := os.MkdirTemp("", "topk-bench-durability")
			if err != nil {
				return nil, err
			}
			man, _, err := persist.Open(dir, persist.Options{Fsync: md.fsync})
			if err != nil {
				os.RemoveAll(dir)
				return nil, err
			}
			cfg.Durability = man
			cleanup = func() { man.Close(); os.RemoveAll(dir) }
		}
		srv := server.New(cfg)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest("PUT", "/tables/dur", strings.NewReader(string(upload))))
		if w.Code != 201 {
			if cleanup != nil {
				cleanup()
			}
			return nil, fmt.Errorf("bench upload: status %d", w.Code)
		}
		series := Series{Name: md.name}
		var total float64
		for i := -durabilityWarmup; i < durabilityAppends; i++ {
			body := fmt.Sprintf(`{"tuples": [{"id": "d%d-%d", "score": 50.5, "prob": 0.5}]}`, mi, i+durabilityWarmup)
			start := time.Now()
			w := httptest.NewRecorder()
			srv.ServeHTTP(w, httptest.NewRequest("POST", "/tables/dur/tuples", strings.NewReader(body)))
			ms := float64(time.Since(start).Microseconds()) / 1000
			if w.Code != 200 {
				if cleanup != nil {
					cleanup()
				}
				return nil, fmt.Errorf("bench append: status %d: %s", w.Code, w.Body.String())
			}
			if i < 0 {
				continue // warmup, untimed
			}
			series.X = append(series.X, float64(i))
			series.Y = append(series.Y, ms)
			total += ms
		}
		if cleanup != nil {
			cleanup()
		}
		fig.Series = append(fig.Series, series)
		fig.Notes = append(fig.Notes,
			fmt.Sprintf("%s mean: %.3f ms", strings.TrimSuffix(md.name, " (ms)"), total/durabilityAppends))
	}
	for _, batch := range []bool{false, true} {
		series, note, err := durabilityConcurrent(string(upload), batch)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, *series)
		fig.Notes = append(fig.Notes, note)
	}
	fig.Notes = append(fig.Notes,
		"in-memory = no durability backend; wal = logged append, OS flushes; wal+fsync = logged and fsynced before the 200 response",
		"8w = 8 concurrent writers on ONE shard, 4 appends each per wave, per-append aggregate latency (wave wall time / 32); wal+batch group-commits, so concurrent appends share fsyncs",
	)
	return fig, nil
}

// durabilityConcurrent measures the 8-writer single-shard append workload
// that group commit exists for: 8 goroutines append concurrently to 8
// tables that all share the one durability shard, under SyncAlways (each
// append pays its own fsync, serialized) or SyncBatch (concurrent appends
// share fsyncs). Each sample is one wave of 8 writers each appending 4
// records back to back — deep enough that the batcher reaches its steady
// state inside the wave — reported as aggregate per-append latency, so the
// batch/always ratio of the series medians is the group-commit throughput
// gain the CI gate protects.
func durabilityConcurrent(upload string, batch bool) (*Series, string, error) {
	const writers, perWriter = 8, 4
	name := "append wal+fsync 8w (ms)"
	if batch {
		name = "append wal+batch 8w (ms)"
	}
	dir, err := os.MkdirTemp("", "topk-bench-durability")
	if err != nil {
		return nil, "", err
	}
	defer os.RemoveAll(dir)
	man, _, err := persist.Open(dir, persist.Options{Fsync: true, BatchFsync: batch, Shards: 1})
	if err != nil {
		return nil, "", err
	}
	defer man.Close()
	srv := server.New(server.Config{AnswerCacheSize: -1, Shards: 1, Durability: man})
	names := make([]string, writers)
	for w := range names {
		names[w] = fmt.Sprintf("dur%d", w)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("PUT", "/tables/"+names[w], strings.NewReader(upload)))
		if rec.Code != 201 {
			return nil, "", fmt.Errorf("bench upload: status %d", rec.Code)
		}
	}
	series := &Series{Name: name}
	var total float64
	for i := -durabilityWarmup; i < durabilityAppends; i++ {
		codes := make([]int, writers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; j < perWriter; j++ {
					body := fmt.Sprintf(`{"tuples": [{"id": "c%d-%d-%d", "score": 50.5, "prob": 0.5}]}`,
						w, i+durabilityWarmup, j)
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, httptest.NewRequest("POST", "/tables/"+names[w]+"/tuples", strings.NewReader(body)))
					if codes[w] = rec.Code; rec.Code != 200 {
						return
					}
				}
			}(w)
		}
		wg.Wait()
		ms := float64(time.Since(start).Microseconds()) / 1000 / (writers * perWriter)
		for _, code := range codes {
			if code != 200 {
				return nil, "", fmt.Errorf("bench concurrent append: status %d", code)
			}
		}
		if i < 0 {
			continue // warmup, untimed
		}
		series.X = append(series.X, float64(i))
		series.Y = append(series.Y, ms)
		total += ms
	}
	note := fmt.Sprintf("%s mean: %.3f ms", strings.TrimSuffix(name, " (ms)"), total/durabilityAppends)
	return series, note, nil
}
