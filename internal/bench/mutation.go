package bench

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"probtopk/internal/server"
	"probtopk/internal/synth"
)

// mutationAppends is how many appends each mutation series measures, and
// mutationWarmup how many run untimed first so cold-path allocations stay
// out of the figure (the bench-compare CI gate trips on the series
// median, which must be stable across runs of the same build).
const (
	mutationAppends = 100
	mutationWarmup  = 10
)

// FigMutation measures snapshot isolation on the serving path: the latency
// of appending one tuple to a hosted table, first uncontended, then while
// goroutines keep deliberately slow queries (answer cache disabled, so
// every request runs the full dynamic program) in flight on the SAME
// table. With atomic snapshot publication both series sit at microseconds —
// append latency is decoupled from concurrent query cost; under the
// retired per-table RWMutex the contended series tracked the query
// duration instead. It is not a figure from the paper; request it with
// `topk-bench -fig mutation`, typically alongside -json so future runs can
// be compared.
func FigMutation() (*Figure, error) {
	tab, err := synth.Generate(synth.Config{N: 400, Seed: 7}.WithDefaults())
	if err != nil {
		return nil, err
	}
	var tuples []server.TupleJSON
	for _, tp := range tab.Tuples() {
		tuples = append(tuples, server.TupleJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	upload, err := json.Marshal(server.TableRequest{Tuples: tuples})
	if err != nil {
		return nil, err
	}

	srv := server.New(server.Config{AnswerCacheSize: -1})
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("PUT", "/tables/mut", strings.NewReader(string(upload))))
	if w.Code != 201 {
		return nil, fmt.Errorf("bench upload: status %d", w.Code)
	}

	const slowQuery = "/tables/mut/topk?k=20"
	query := func() error {
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest("GET", slowQuery, nil))
		if w.Code != 200 {
			return fmt.Errorf("bench query: status %d", w.Code)
		}
		return nil
	}
	// One uncontended run fixes the reference query duration for the notes.
	queryStart := time.Now()
	if err := query(); err != nil {
		return nil, err
	}
	querySecs := time.Since(queryStart).Seconds()

	appendOnce := func(i int, contended bool) (float64, error) {
		body := fmt.Sprintf(`{"tuples": [{"id": "m%v-%d", "score": 50.5, "prob": 0.5}]}`, contended, i)
		start := time.Now()
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest("POST", "/tables/mut/tuples", strings.NewReader(body)))
		ms := float64(time.Since(start).Microseconds()) / 1000
		if w.Code != 200 {
			return 0, fmt.Errorf("bench append: status %d: %s", w.Code, w.Body.String())
		}
		return ms, nil
	}

	uncontended := Series{Name: "append uncontended (ms)"}
	for i := -mutationWarmup; i < mutationAppends; i++ {
		ms, err := appendOnce(i+mutationWarmup, false)
		if err != nil {
			return nil, err
		}
		if i < 0 {
			continue // warmup, untimed
		}
		uncontended.X = append(uncontended.X, float64(i))
		uncontended.Y = append(uncontended.Y, ms)
	}

	// Keep slow queries continuously in flight, then measure again.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := query(); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the queries get into their DP
	contended := Series{Name: "append under slow queries (ms)"}
	var worst float64
	for i := 0; i < mutationAppends; i++ {
		ms, err := appendOnce(i, true)
		if err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
		if ms > worst {
			worst = ms
		}
		contended.X = append(contended.X, float64(i))
		contended.Y = append(contended.Y, ms)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}

	return &Figure{
		ID:     "mutation",
		Title:  "Append latency vs concurrent slow queries (snapshot isolation, 400 tuples)",
		Series: []Series{uncontended, contended},
		Notes: []string{
			"uncontended = appends with no query in flight",
			"under slow queries = appends while 2 goroutines keep k=20 full-DP queries running on the same table",
			fmt.Sprintf("reference slow query: %.0f ms; worst contended append: %.3f ms — appends do not wait for queries", querySecs*1000, worst),
		},
	}, nil
}
