package bench

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"time"

	"probtopk/internal/server"
	"probtopk/internal/synth"
)

// servingReps is how many requests each serving measurement averages over.
const servingReps = 5

// FigServing measures the HTTP serving path end to end — request decode,
// engine, JSON encode — on the Figure-13a synthetic workload (200 tuples),
// for growing k: one series with the derived-answer cache disabled (every
// request recomputes) and one with the cache warm (every request is a
// derived-answer hit). It is not a figure from the paper; request it with
// `topk-bench -fig serving`, typically alongside -json so future runs can
// be compared.
func FigServing() (*Figure, error) {
	tab, err := synth.Generate(synth.Config{Seed: 1}.WithDefaults())
	if err != nil {
		return nil, err
	}
	var tuples []server.TupleJSON
	for _, tp := range tab.Tuples() {
		tuples = append(tuples, server.TupleJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	upload, err := json.Marshal(server.TableRequest{Tuples: tuples})
	if err != nil {
		return nil, err
	}

	ks := []int{1, 5, 10, 20, 50}
	cold := Series{Name: "cold (cache disabled, ms/req)"}
	hit := Series{Name: "derived-cache hit (ms/req)"}
	for _, cached := range []bool{false, true} {
		cfg := server.Config{AnswerCacheSize: -1}
		if cached {
			cfg.AnswerCacheSize = 0 // default-sized cache
		}
		srv := server.New(cfg)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, httptest.NewRequest("PUT", "/tables/bench", strings.NewReader(string(upload))))
		if w.Code != 201 {
			return nil, fmt.Errorf("bench upload: status %d", w.Code)
		}
		for _, k := range ks {
			path := fmt.Sprintf("/tables/bench/topk?k=%d", k)
			query := func() error {
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
				if w.Code != 200 {
					return fmt.Errorf("bench query k=%d: status %d", k, w.Code)
				}
				return nil
			}
			if err := query(); err != nil { // warm caches / first computation
				return nil, err
			}
			start := time.Now()
			for r := 0; r < servingReps; r++ {
				if err := query(); err != nil {
					return nil, err
				}
			}
			ms := float64(time.Since(start).Microseconds()) / 1000 / servingReps
			if cached {
				hit.X = append(hit.X, float64(k))
				hit.Y = append(hit.Y, ms)
			} else {
				cold.X = append(cold.X, float64(k))
				cold.Y = append(cold.Y, ms)
			}
		}
	}
	return &Figure{
		ID:     "serving",
		Title:  "HTTP serving path: cold vs derived-answer cache hit (200 tuples)",
		Series: []Series{cold, hit},
		Notes: []string{
			"cold = answer cache disabled; every request runs the DP and re-encodes",
			"hit = repeated identical request served from the derived-answer cache",
			fmt.Sprintf("each point averages %d requests after one warmup", servingReps),
		},
	}, nil
}
