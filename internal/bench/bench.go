// Package bench is the experiment harness that regenerates every figure of
// the paper's empirical study (§5). Each FigN function reproduces one
// figure's workload and returns the plotted series, with the U-Topk and
// 3-Typical positions marked where the paper shows them.
//
// The real CarTel dataset is replaced by the synthetic substitute in
// internal/cartel (see DESIGN.md §4); absolute timings differ from the
// paper's 2009 hardware, but every claimed shape — exponential baselines vs.
// the flat main algorithm, linear scan depth, cost linear in the line cap,
// distribution shifts under correlation — is asserted by this package's
// tests.
package bench

import (
	"fmt"
	"time"

	"probtopk/internal/baselines"
	"probtopk/internal/cartel"
	"probtopk/internal/core"
	"probtopk/internal/pmf"
	"probtopk/internal/synth"
	"probtopk/internal/typical"
	"probtopk/internal/uncertain"
)

// Series is one plotted curve: paired X/Y values. The JSON tags define the
// machine-readable schema emitted by WriteJSON (topk-bench -json).
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Marker is an annotated position in a distribution figure (the paper's
// solid U-Topk arrow and dotted typical arrows).
type Marker struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
	Prob  float64 `json:"prob"`
}

// Figure is one reproduced figure.
type Figure struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Series  []Series `json:"series"`
	Markers []Marker `json:"markers,omitempty"`
	Notes   []string `json:"notes,omitempty"`
}

// distSeries converts a distribution into a plottable series of histogram
// buckets (midpoint, probability) with roughly the given bucket count.
func distSeries(name string, d *pmf.Dist, buckets int) Series {
	s := Series{Name: name}
	if d.IsEmpty() {
		return s
	}
	width := d.Span() / float64(buckets)
	if width <= 0 {
		width = 1
	}
	for _, b := range d.Histogram(width) {
		s.X = append(s.X, (b.Lo+b.Hi)/2)
		s.Y = append(s.Y, b.Prob)
	}
	return s
}

// markDist computes the U-Topk and 3-Typical markers for a distribution.
func markDist(d *pmf.Dist) ([]Marker, error) {
	var ms []Marker
	if u, ok := baselines.UTopkLine(d); ok {
		ms = append(ms, Marker{Name: "U-Topk", Score: u.Score, Prob: u.VecProb})
	}
	ans, err := typical.Select(d, 3)
	if err != nil {
		return nil, err
	}
	for i, l := range ans.Lines {
		ms = append(ms, Marker{Name: fmt.Sprintf("3-Typical #%d", i+1), Score: l.Score, Prob: l.Prob})
	}
	return ms, nil
}

// defaultParams are the study-wide algorithm settings: pτ = 0.001 (as §5.3
// states) and at most 200 distribution lines.
func defaultParams(k int) core.Params {
	return core.Params{K: k, Threshold: 0.001, MaxLines: 200, TrackVectors: true}
}

// timeIt measures the wall-clock duration of f in seconds.
func timeIt(f func() error) (float64, error) {
	start := time.Now()
	err := f()
	return time.Since(start).Seconds(), err
}

// Fig3 reproduces Figure 3: the distribution of top-2 total scores of the
// Example-1 battlefield table, with the atypical U-Top2 vector marked.
func Fig3() (*Figure, error) {
	tab := uncertain.NewTable()
	tab.AddIndependent("T1", 49, 0.4)
	tab.AddExclusive("T2", "soldier2", 60, 0.4)
	tab.AddExclusive("T3", "soldier3", 110, 0.4)
	tab.AddExclusive("T4", "soldier2", 80, 0.3)
	tab.AddIndependent("T5", 56, 1.0)
	tab.AddExclusive("T6", "soldier3", 58, 0.5)
	tab.AddExclusive("T7", "soldier2", 125, 0.3)
	p, err := uncertain.Prepare(tab)
	if err != nil {
		return nil, err
	}
	res, err := core.Distribution(p, core.Params{K: 2, TrackVectors: true})
	if err != nil {
		return nil, err
	}
	f := &Figure{ID: "fig3", Title: "Top-2 total-score distribution of Example 1"}
	s := Series{Name: "exact PMF"}
	for _, l := range res.Dist.Lines() {
		s.X = append(s.X, l.Score)
		s.Y = append(s.Y, l.Prob)
	}
	f.Series = append(f.Series, s)
	f.Markers, err = markDist(res.Dist)
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("expected top-2 score %.1f (paper: 164.1)", res.Dist.Mean()),
		fmt.Sprintf("Pr(score > U-Topk's 118) = %.2f (paper: 0.76)", res.Dist.TailProb(118)))
	return f, nil
}

// fig8Area holds the per-subplot parameters of Figure 8.
type fig8Area struct {
	seed     int64
	segments int
	k        int
}

// Fig8 reproduces Figure 8: top-k congestion-score distributions of three
// random areas of the road-delay dataset, k = 5, 5, 10.
func Fig8() ([]*Figure, error) {
	areas := []fig8Area{{seed: 101, segments: 120, k: 5}, {seed: 202, segments: 120, k: 5}, {seed: 303, segments: 150, k: 10}}
	var figs []*Figure
	for i, a := range areas {
		area := cartel.GenerateArea(cartel.Config{Segments: a.segments, Seed: a.seed})
		tab, err := area.CongestionTable(4, 0)
		if err != nil {
			return nil, err
		}
		p, err := uncertain.Prepare(tab)
		if err != nil {
			return nil, err
		}
		res, err := core.Distribution(p, defaultParams(a.k))
		if err != nil {
			return nil, err
		}
		f := &Figure{
			ID:    fmt.Sprintf("fig8%c", 'a'+i),
			Title: fmt.Sprintf("Congestion scores of top-%d (area %d)", a.k, i+1),
		}
		f.Series = append(f.Series, distSeries("top-k score PMF", res.Dist, 40))
		f.Markers, err = markDist(res.Dist)
		if err != nil {
			return nil, err
		}
		f.Notes = append(f.Notes,
			fmt.Sprintf("scan depth %d of %d tuples", res.ScanDepth, p.Len()),
			fmt.Sprintf("U-Topk at score %.1f vs mean %.1f, median %.1f",
				f.Markers[0].Score, res.Dist.Mean(), res.Dist.Median()))
		figs = append(figs, f)
	}
	return figs, nil
}

// cartelTable builds the standard performance-study table. Two delay bins
// per segment give the ≈0.5 average tuple probabilities of the paper's
// dataset, which is what places its Figure-9 scan depths in the 50–250
// range.
func cartelTable(seed int64, segments int) (*uncertain.Prepared, error) {
	area := cartel.GenerateArea(cartel.Config{Segments: segments, Seed: seed})
	tab, err := area.CongestionTable(2, 0)
	if err != nil {
		return nil, err
	}
	return uncertain.Prepare(tab)
}

// Fig9 reproduces Figure 9: Theorem-2 scan depth n versus k at pτ = 0.001.
func Fig9() (*Figure, error) {
	p, err := cartelTable(7, 300)
	if err != nil {
		return nil, err
	}
	f := &Figure{ID: "fig9", Title: "k vs scan depth (n), ptau = 0.001"}
	s := Series{Name: "scan depth"}
	for k := 10; k <= 60; k += 10 {
		s.X = append(s.X, float64(k))
		s.Y = append(s.Y, float64(core.ScanDepth(p, k, 0.001)))
	}
	f.Series = append(f.Series, s)
	f.Notes = append(f.Notes, "expected shape: roughly linear growth (Theorem 2)")
	return f, nil
}

// fig10NaiveKs are the k values attempted by the naive baselines before the
// state budget cuts their exponential curves off.
var fig10NaiveKs = []int{2, 3, 4, 5}

// Fig10 reproduces Figure 10: execution time versus k for the main
// algorithm, StateExpansion and k-Combo. The naive algorithms run in exact
// mode over the same Theorem-2 prefix the main algorithm scans: on this
// dataset the Figure-4 threshold pruning would otherwise terminate them
// early (tuple probabilities near 0.5 shrink every path below pτ within a
// few dozen tuples) and mask the exponential cost the paper reports. They
// are stopped at the k where they exceed the state budget, mirroring the
// paper's cut-off curves.
func Fig10() (*Figure, error) {
	p, err := cartelTable(7, 300)
	if err != nil {
		return nil, err
	}
	f := &Figure{ID: "fig10", Title: "k vs execution time (seconds)"}
	main := Series{Name: "main"}
	for _, k := range []int{10, 20, 30, 40, 50, 60} {
		params := defaultParams(k)
		params.MaxLines = 100
		secs, err := timeIt(func() error {
			_, err := core.Distribution(p, params)
			return err
		})
		if err != nil {
			return nil, err
		}
		main.X = append(main.X, float64(k))
		main.Y = append(main.Y, secs)
	}
	f.Series = append(f.Series, main)

	naive := []struct {
		name string
		run  func(*uncertain.Prepared, core.Params) (*core.Result, error)
	}{
		{"state-expansion", core.StateExpansion},
		{"k-combo", core.KCombo},
	}
	for _, a := range naive {
		s := Series{Name: a.name}
		for _, k := range fig10NaiveKs {
			// Same prefix as the main algorithm would scan for this k.
			sub, err := uncertain.Prepare(p.TruncateTable(core.ScanDepth(p, k, 0.001)))
			if err != nil {
				return nil, err
			}
			params := core.Params{K: k, MaxLines: 100, TrackVectors: true, MaxStates: 1_500_000}
			secs, err := timeIt(func() error {
				_, err := a.run(sub, params)
				return err
			})
			if err == core.ErrBudgetExceeded {
				f.Notes = append(f.Notes, fmt.Sprintf("%s exceeded the state budget at k=%d (exponential blow-up)", a.name, k))
				break
			}
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, secs)
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes, "expected shape: naive algorithms grow exponentially; main stays near-linear")
	return f, nil
}

// Fig11 reproduces Figure 11: execution time versus the portion of mutually
// exclusive tuples, controlled by collapsing a fraction of road segments to
// single-bin point estimates.
func Fig11() (*Figure, error) {
	f := &Figure{ID: "fig11", Title: "ME tuple portion vs execution time (seconds)"}
	s := Series{Name: "main algorithm"}
	area := cartel.GenerateArea(cartel.Config{Segments: 300, Seed: 7})
	for _, single := range []float64{0.9, 0.75, 0.6, 0.45, 0.3} {
		tab, err := area.CongestionTable(2, single)
		if err != nil {
			return nil, err
		}
		p, err := uncertain.Prepare(tab)
		if err != nil {
			return nil, err
		}
		params := defaultParams(20)
		n := core.ScanDepth(p, params.K, params.Threshold)
		portion := float64(p.MExclusiveCount(n)) / float64(n)
		secs, err := timeIt(func() error {
			_, err := core.Distribution(p, params)
			return err
		})
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, portion)
		s.Y = append(s.Y, secs)
	}
	f.Series = append(f.Series, s)
	f.Notes = append(f.Notes, "expected shape: time increases with the ME portion (O(kmn), §3.3.3)")
	return f, nil
}

// Fig12 reproduces Figure 12: execution time versus the maximum number of
// lines allowed by the coalescing strategy.
func Fig12() (*Figure, error) {
	p, err := cartelTable(7, 300)
	if err != nil {
		return nil, err
	}
	f := &Figure{ID: "fig12", Title: "max #lines vs execution time (seconds)"}
	s := Series{Name: "main algorithm, k=30"}
	for lines := 50; lines <= 500; lines += 50 {
		params := defaultParams(30)
		params.MaxLines = lines
		secs, err := timeIt(func() error {
			_, err := core.Distribution(p, params)
			return err
		})
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(lines))
		s.Y = append(s.Y, secs)
	}
	f.Series = append(f.Series, s)
	f.Notes = append(f.Notes, "expected shape: runtime varies linearly with the line budget (§3.2.1)")
	return f, nil
}

// synthFigure runs the standard synthetic experiment: top-10 over a
// generated table, distribution + markers.
func synthFigure(id, title string, cfg synth.Config) (*Figure, error) {
	tab, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	p, err := uncertain.Prepare(tab)
	if err != nil {
		return nil, err
	}
	res, err := core.Distribution(p, defaultParams(10))
	if err != nil {
		return nil, err
	}
	f := &Figure{ID: id, Title: title}
	f.Series = append(f.Series, distSeries("top-10 score PMF", res.Dist, 40))
	f.Markers, err = markDist(res.Dist)
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes, fmt.Sprintf("mean %.1f, span [%.1f, %.1f], mass %.3f",
		res.Dist.Mean(), res.Dist.Min(), res.Dist.Max(), res.Dist.TotalMass()))
	return f, nil
}

// fig13Seed keeps Figures 13–16 on the same base dataset, as in the paper
// ("with everything else being the same as in Figure 13a").
const fig13Seed = 1309

// Fig13 reproduces Figure 13: score–probability correlation ρ = 0, +0.8,
// −0.8 shifting the top-10 score distribution right and left.
func Fig13() ([]*Figure, error) {
	var figs []*Figure
	for i, rho := range []float64{0, 0.8, -0.8} {
		cfg := synth.Config{N: 300, Rho: rho, Seed: fig13Seed}
		f, err := synthFigure(fmt.Sprintf("fig13%c", 'a'+i),
			fmt.Sprintf("Top-10 score distribution, rho = %v", rho), cfg)
		if err != nil {
			return nil, err
		}
		figs = append(figs, f)
	}
	figs[1].Notes = append(figs[1].Notes, "expected: shifted right of fig13a")
	figs[2].Notes = append(figs[2].Notes, "expected: shifted left of fig13a")
	return figs, nil
}

// Fig14 reproduces Figure 14: increasing the score deviation σ from 60 to
// 100 widens the distribution span.
func Fig14() (*Figure, error) {
	cfg := synth.Config{N: 300, ScoreStd: 100, Seed: fig13Seed}
	f, err := synthFigure("fig14", "Top-10 score distribution, sigma = 100", cfg)
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes, "expected: much wider span than fig13a (sigma 60)")
	return f, nil
}

// Fig15 reproduces Figure 15: widening the positional gaps between ME group
// members (d ∈ [1,8] → [1,40]) leaves the distribution essentially unchanged.
func Fig15() (*Figure, error) {
	cfg := synth.Config{N: 300, GapMin: 1, GapMax: 40, Seed: fig13Seed}
	f, err := synthFigure("fig15", "Top-10 score distribution, ME gaps in [1, 40]", cfg)
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes, "expected: no noticeable change from fig13a")
	return f, nil
}

// Fig16 reproduces Figure 16: growing ME groups (sizes 2–3 → 2–10) widen and
// lower the distribution and push the U-Topk answer toward its low end.
func Fig16() (*Figure, error) {
	cfg := synth.Config{N: 300, SizeMin: 2, SizeMax: 10, MEPortion: 0.6, Seed: fig13Seed}
	f, err := synthFigure("fig16", "Top-10 score distribution, ME group sizes in [2, 10]", cfg)
	if err != nil {
		return nil, err
	}
	f.Notes = append(f.Notes,
		"expected: wider, lower-valued distribution; U-Topk drifts to the low end")
	return f, nil
}

// All runs every figure in order.
func All() ([]*Figure, error) {
	var figs []*Figure
	add := func(f *Figure, err error) error {
		if err != nil {
			return err
		}
		figs = append(figs, f)
		return nil
	}
	addN := func(fs []*Figure, err error) error {
		if err != nil {
			return err
		}
		figs = append(figs, fs...)
		return nil
	}
	steps := []func() error{
		func() error { return add(Fig3()) },
		func() error { return addN(Fig8()) },
		func() error { return add(Fig9()) },
		func() error { return add(Fig10()) },
		func() error { return add(Fig11()) },
		func() error { return add(Fig12()) },
		func() error { return addN(Fig13()) },
		func() error { return add(Fig14()) },
		func() error { return add(Fig15()) },
		func() error { return add(Fig16()) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return figs, nil
}
