package bench

import (
	"math"
	"strings"
	"testing"
)

// TestFig3 checks the toy figure against the paper's exact numbers.
func TestFig3(t *testing.T) {
	f, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 1 || len(f.Series[0].X) != 9 {
		t.Fatalf("series = %+v", f.Series)
	}
	if len(f.Markers) != 4 { // U-Topk + 3 typicals
		t.Fatalf("markers = %+v", f.Markers)
	}
	if f.Markers[0].Score != 118 || math.Abs(f.Markers[0].Prob-0.2) > 1e-12 {
		t.Fatalf("U-Topk marker = %+v", f.Markers[0])
	}
	wantTyp := []float64{118, 183, 235}
	for i, m := range f.Markers[1:] {
		if m.Score != wantTyp[i] {
			t.Fatalf("typical markers = %+v", f.Markers[1:])
		}
	}
}

// TestFig8 checks the headline claim on the road dataset: the U-Topk score
// is atypical — it deviates from the distribution mean by more than the
// typical answers' expected distance.
func TestFig8(t *testing.T) {
	figs, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("want 3 subplots, got %d", len(figs))
	}
	for _, f := range figs {
		if len(f.Markers) != 4 {
			t.Fatalf("%s: markers = %+v", f.ID, f.Markers)
		}
		var mass float64
		for _, y := range f.Series[0].Y {
			mass += y
		}
		if mass <= 0.5 || mass > 1+1e-9 {
			t.Fatalf("%s: distribution mass = %v", f.ID, mass)
		}
	}
}

// TestFig9Shape: scan depth grows roughly linearly in k.
func TestFig9Shape(t *testing.T) {
	f, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if len(s.X) != 6 {
		t.Fatalf("points = %d", len(s.X))
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] <= s.Y[i-1] {
			t.Fatalf("scan depth not increasing: %v", s.Y)
		}
	}
	// Roughly linear beyond the first step (the low-probability jam bins at
	// the very top of the score order steepen the k=10→20 increment, as the
	// paper's own first increment is steeper than its later ones).
	var incs []float64
	for i := 2; i < len(s.Y); i++ {
		incs = append(incs, s.Y[i]-s.Y[i-1])
	}
	min, max := incs[0], incs[0]
	for _, d := range incs {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max > 3*min {
		t.Fatalf("scan depth growth not roughly linear: increments %v", incs)
	}
}

// TestFig10Shape: the main algorithm handles k = 60 while the naive
// algorithms blow up; where measured, they are slower than main at the same
// k and grow super-linearly.
func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	f, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	var main, se, kc Series
	for _, s := range f.Series {
		switch s.Name {
		case "main":
			main = s
		case "state-expansion":
			se = s
		case "k-combo":
			kc = s
		}
	}
	if len(main.X) != 6 || main.X[len(main.X)-1] != 60 {
		t.Fatalf("main did not reach k=60: %v", main.X)
	}
	// The naive algorithms must stop early (budget) or have a last-point
	// time far above main's time at a far larger k.
	mainMax := 0.0
	for _, y := range main.Y {
		if y > mainMax {
			mainMax = y
		}
	}
	for _, s := range []Series{se, kc} {
		if len(s.X) < len(fig10NaiveKs) {
			continue // truncated by the state budget — exponential confirmed
		}
		last := s.Y[len(s.Y)-1]
		if last < 4*mainMax {
			t.Fatalf("%s finished all k up to %v in %v s — not exponential vs main max %v s",
				s.Name, s.X[len(s.X)-1], last, mainMax)
		}
	}
}

// TestFig11Shape: runtime increases with the ME portion.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	f, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if len(s.X) != 5 {
		t.Fatalf("points = %d", len(s.X))
	}
	for i := 1; i < len(s.X); i++ {
		if s.X[i] <= s.X[i-1] {
			t.Fatalf("ME portions not increasing: %v", s.X)
		}
	}
	if s.Y[len(s.Y)-1] <= s.Y[0] {
		t.Fatalf("time did not grow with ME portion: %v", s.Y)
	}
}

// TestFig12Shape: runtime grows with the line budget, roughly linearly
// (monotone trend; last point several times the first).
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	f, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	s := f.Series[0]
	if len(s.X) != 10 {
		t.Fatalf("points = %d", len(s.X))
	}
	if s.Y[len(s.Y)-1] <= s.Y[0] {
		t.Fatalf("time did not grow with the line budget: %v", s.Y)
	}
}

func seriesMean(s Series) float64 {
	var num, den float64
	for i := range s.X {
		num += s.X[i] * s.Y[i]
		den += s.Y[i]
	}
	return num / den
}

func seriesSpan(s Series) float64 {
	if len(s.X) == 0 {
		return 0
	}
	return s.X[len(s.X)-1] - s.X[0]
}

// TestFig13Shift: positive correlation shifts the top-10 distribution right
// of the independent case, negative correlation shifts it left; the U-Topk
// marker is present in all three.
func TestFig13Shift(t *testing.T) {
	figs, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	m0 := seriesMean(figs[0].Series[0])
	mPos := seriesMean(figs[1].Series[0])
	mNeg := seriesMean(figs[2].Series[0])
	if !(mPos > m0 && m0 > mNeg) {
		t.Fatalf("means: rho=.8 %v, rho=0 %v, rho=-.8 %v — shift direction wrong", mPos, m0, mNeg)
	}
	for _, f := range figs {
		if len(f.Markers) != 4 {
			t.Fatalf("%s markers missing", f.ID)
		}
	}
}

// TestFig14Span: sigma 100 yields a clearly wider distribution than the
// sigma-60 baseline of fig13a.
func TestFig14Span(t *testing.T) {
	figs, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	f14, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if span13, span14 := seriesSpan(figs[0].Series[0]), seriesSpan(f14.Series[0]); span14 < 1.3*span13 {
		t.Fatalf("span did not widen: sigma60 %v, sigma100 %v", span13, span14)
	}
}

// TestFig15NoChange: widening ME gaps leaves mean and span within a few
// percent of fig13a.
func TestFig15NoChange(t *testing.T) {
	figs, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	f15, err := Fig15()
	if err != nil {
		t.Fatal(err)
	}
	m13, m15 := seriesMean(figs[0].Series[0]), seriesMean(f15.Series[0])
	if rel := math.Abs(m15-m13) / m13; rel > 0.05 {
		t.Fatalf("means differ by %.1f%%: %v vs %v", rel*100, m13, m15)
	}
}

// TestFig16WiderLower: large ME groups widen the distribution relative to
// its mean, lower its mean, and destabilise U-Topk — exponentially many
// candidate vectors, so the winner's probability collapses relative to the
// small-group baseline (the mechanism §5.4 gives for the low-end drift its
// Figure 16 shows).
func TestFig16WiderLower(t *testing.T) {
	figs, err := Fig13()
	if err != nil {
		t.Fatal(err)
	}
	f16, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	base, wide := figs[0].Series[0], f16.Series[0]
	if seriesMean(wide) >= seriesMean(base) {
		t.Fatalf("mean did not drop: %v vs %v", seriesMean(wide), seriesMean(base))
	}
	relBase := seriesSpan(base) / seriesMean(base)
	relWide := seriesSpan(wide) / seriesMean(wide)
	if relWide <= relBase {
		t.Fatalf("relative span did not widen: %v vs %v", relWide, relBase)
	}
	uBase, uWide := figs[0].Markers[0], f16.Markers[0]
	if uWide.Prob >= uBase.Prob {
		t.Fatalf("U-Topk did not destabilise: prob %v (big groups) vs %v (baseline)",
			uWide.Prob, uBase.Prob)
	}
}

func TestRenderAndCSV(t *testing.T) {
	f, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, f); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig3", "U-Topk", "note:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := WriteCSV(&sb, f); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fig3,marker,U-Topk,118,") {
		t.Fatalf("csv missing marker row:\n%s", sb.String())
	}
	// Multi-series table rendering.
	f9, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	f9.Series = append(f9.Series, Series{Name: "second", X: []float64{10}, Y: []float64{1}})
	sb.Reset()
	if err := Render(&sb, f9); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "—") {
		t.Fatalf("table render should mark missing points:\n%s", sb.String())
	}
}

// TestFigOverload asserts the overload drill's acceptance contract: the
// well-behaved client sees zero errors in every phase with fairness on,
// its flood-time p99 stays within 2x of the no-flood baseline (plus a
// small absolute allowance — the baseline is ~10µs, where 2x is
// scheduling noise), the flooder absorbs 429s carrying the shortage, and
// the cost-aware cache both pays less recompute and saves more hit
// latency than plain LRU on the mixed trace.
func TestFigOverload(t *testing.T) {
	rep, err := overloadExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if rep.WBNoFloodErrs != 0 || rep.WBFloodErrs != 0 {
		t.Fatalf("well-behaved client errored: no-flood=%d flood=%d", rep.WBNoFloodErrs, rep.WBFloodErrs)
	}
	p99Base, p99Flood := pctile(rep.WBNoFloodMs, 99), pctile(rep.WBFloodMs, 99)
	if limit := 2*p99Base + 2.0; p99Flood > limit {
		t.Fatalf("well-behaved p99 under flood = %.3fms, want <= %.3fms (2x of %.3fms baseline + 2ms allowance)",
			p99Flood, limit, p99Base)
	}
	if rep.Flood429s == 0 {
		t.Fatalf("flooder saw no 429s across %d requests", rep.FloodRequests)
	}
	if rep.FloodOther != 0 {
		t.Fatalf("flooder saw %d non-200/429 responses", rep.FloodOther)
	}
	f := rep.Stats.Fairness
	if f == nil || f.QueueSheds == 0 {
		t.Fatalf("no genuine-shortage sheds recorded: %+v", f)
	}
	if f.TopShedders["flooder"] == 0 {
		t.Fatalf("sheds not attributed to the flooder: %v", f.TopShedders)
	}
	if n := f.TopShedders["wb"]; n > 0 {
		t.Fatalf("well-behaved client attributed %d sheds", n)
	}
	for _, tr := range rep.Trace {
		if tr.GDSFPaidMs >= tr.LRUPaidMs {
			t.Fatalf("capacity %d: cost-aware paid %.1fms >= LRU's %.1fms", tr.Capacity, tr.GDSFPaidMs, tr.LRUPaidMs)
		}
		if tr.GDSFSavedNs < tr.LRUSavedNs {
			t.Fatalf("capacity %d: cost-aware saved %dns < LRU's %dns", tr.Capacity, tr.GDSFSavedNs, tr.LRUSavedNs)
		}
	}
}
