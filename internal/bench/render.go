package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// barWidth is the maximum width of an ASCII histogram bar.
const barWidth = 48

// Render writes a human-readable view of the figure: a bar chart for
// single-series distribution figures and an aligned table for multi-series
// performance figures, followed by markers and notes.
func Render(w io.Writer, f *Figure) error {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", f.ID, f.Title)
	if len(f.Series) == 1 && len(f.Series[0].X) > 0 {
		renderBars(&b, f.Series[0])
	} else {
		renderTable(&b, f.Series)
	}
	for _, m := range f.Markers {
		fmt.Fprintf(&b, "  ▸ %-14s score %10.3f  prob %.4f\n", m.Name, m.Score, m.Prob)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	fmt.Fprintln(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

func renderBars(b *strings.Builder, s Series) {
	maxY := 0.0
	for _, y := range s.Y {
		if y > maxY {
			maxY = y
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	for i := range s.X {
		n := int(s.Y[i] / maxY * barWidth)
		fmt.Fprintf(b, "  %10.2f  %-*s %.4f\n", s.X[i], barWidth, strings.Repeat("█", n), s.Y[i])
	}
}

func renderTable(b *strings.Builder, series []Series) {
	if len(series) == 0 {
		return
	}
	fmt.Fprintf(b, "  %10s", "x")
	for _, s := range series {
		fmt.Fprintf(b, "  %18s", s.Name)
	}
	fmt.Fprintln(b)
	// Union of X values in first-seen order (series may have different
	// lengths, e.g. truncated exponential baselines).
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		fmt.Fprintf(b, "  %10.3f", x)
		for _, s := range series {
			y, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(b, "  %18.6f", y)
			} else {
				fmt.Fprintf(b, "  %18s", "—")
			}
		}
		fmt.Fprintln(b)
	}
}

func lookup(s Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// WriteJSON emits the figures as one JSON array using the schema defined by
// the Figure/Series/Marker tags. This is the machine-readable form tracked
// across PRs: `topk-bench -fig 9 -json > BENCH_fig9.json` snapshots a
// figure, and `topk-bench -fig serving -json` snapshots the serving path.
func WriteJSON(w io.Writer, figs []*Figure) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(figs)
}

// WriteCSV emits the figure's series as CSV: one row per (series, x, y)
// triple, plus marker rows, for external plotting.
func WriteCSV(w io.Writer, f *Figure) error {
	var b strings.Builder
	b.WriteString("figure,kind,name,x,y\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,series,%s,%g,%g\n", f.ID, s.Name, s.X[i], s.Y[i])
		}
	}
	for _, m := range f.Markers {
		fmt.Fprintf(&b, "%s,marker,%s,%g,%g\n", f.ID, m.Name, m.Score, m.Prob)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
