package bench

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"probtopk/internal/server"
	"probtopk/internal/server/anscache"
	"probtopk/internal/server/fairness"
	"probtopk/internal/synth"
)

// Overload-drill shape: how many timed well-behaved requests each phase
// takes, how many flooding goroutines run, and a hard cap on flood
// requests so a wedged phase cannot run away.
const (
	overloadWBRequests   = 200
	overloadFlooders     = 4
	overloadFloodCap     = 4000
	overloadWBSpacing    = 500 * time.Microsecond
	overloadNoFairWBReqs = 100
)

// overloadReport carries the raw drill outcomes for the package tests; the
// figure's series and notes are derived from it.
type overloadReport struct {
	// Well-behaved client latencies (ms, sorted ascending) and error counts
	// per phase.
	WBNoFloodMs []float64
	WBFloodMs   []float64
	WBNoFloodErrs,
	WBFloodErrs int
	// Flooder outcome during the fairness phase.
	FloodRequests, Flood429s, FloodOKs, FloodOther int
	// Stats snapshot after the fairness flood phase.
	Stats server.StatsResponse
	// No-fairness control phase: the same flood with the throttler off.
	WBNoFairMs   []float64
	WBNoFairErrs int
	// Cache trace outcomes per capacity: recompute cost paid (lower is
	// better) and saved latency (hits × cost) for each policy.
	Trace []traceOutcome
}

type traceOutcome struct {
	Capacity              int
	LRUPaidMs, GDSFPaidMs float64
	LRUSavedNs,
	GDSFSavedNs uint64
}

// pctile reads the p-th percentile from an ascending-sorted sample.
func pctile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

// overloadServer builds a server hosting the 200-tuple synthetic table
// (the serving-figure workload, whose cold top-k DP costs tens of ms).
func overloadServer(fcfg *fairness.Config) (*server.Server, error) {
	tab, err := synth.Generate(synth.Config{Seed: 1}.WithDefaults())
	if err != nil {
		return nil, err
	}
	var tuples []server.TupleJSON
	for _, tp := range tab.Tuples() {
		tuples = append(tuples, server.TupleJSON{ID: tp.ID, Score: tp.Score, Prob: tp.Prob, Group: tp.Group})
	}
	upload, err := json.Marshal(server.TableRequest{Tuples: tuples})
	if err != nil {
		return nil, err
	}
	srv := server.New(server.Config{Fairness: fcfg})
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("PUT", "/tables/bench", strings.NewReader(string(upload))))
	if w.Code != 201 {
		return nil, fmt.Errorf("overload upload: status %d", w.Code)
	}
	// Warm the well-behaved client's one query: its flood-time traffic is
	// all cache hits, which never touch the compute gate.
	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/tables/bench/topk?k=10", nil))
	if w.Code != 200 {
		return nil, fmt.Errorf("overload warmup: status %d", w.Code)
	}
	return srv, nil
}

// wbPhase runs n spaced well-behaved requests (client id "wb") and returns
// their sorted latencies in ms plus the non-200 count.
func wbPhase(srv *server.Server, n int) ([]float64, int) {
	lats := make([]float64, 0, n)
	errs := 0
	for i := 0; i < n; i++ {
		req := httptest.NewRequest("GET", "/tables/bench/topk?k=10", nil)
		req.Header.Set(fairness.ClientHeader, "wb")
		w := httptest.NewRecorder()
		start := time.Now()
		srv.ServeHTTP(w, req)
		lats = append(lats, float64(time.Since(start).Microseconds())/1000)
		if w.Code != 200 {
			errs++
		}
		time.Sleep(overloadWBSpacing)
	}
	sort.Float64s(lats)
	return lats, errs
}

// flood launches the flooding client: goroutines hammering always-cold
// queries (distinct thresholds never repeat, so every request misses the
// cache and wants the compute gate) under one client id. stop() ends the
// flood and returns (requests, 429s, 200s, other).
func flood(srv *server.Server) (stop func() (int, int, int, int)) {
	var stopFlag atomic.Bool
	var requests, got429, got200, other atomic.Int64
	var wg sync.WaitGroup
	var seq atomic.Int64
	for g := 0; g < overloadFlooders; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopFlag.Load() {
				n := seq.Add(1)
				if n > overloadFloodCap {
					return
				}
				path := fmt.Sprintf("/tables/bench/topk?k=10&threshold=%.9f", 0.0001+float64(n)*1e-9)
				req := httptest.NewRequest("GET", path, nil)
				req.Header.Set(fairness.ClientHeader, "flooder")
				w := httptest.NewRecorder()
				srv.ServeHTTP(w, req)
				requests.Add(1)
				switch w.Code {
				case 429:
					got429.Add(1)
				case 200:
					got200.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	return func() (int, int, int, int) {
		stopFlag.Store(true)
		wg.Wait()
		return int(requests.Load()), int(got429.Load()), int(got200.Load()), int(other.Load())
	}
}

// overloadGate is the drill's fairness configuration: a deliberately small
// compute gate (so the flood saturates it quickly and deterministically on
// any hardware) with a fixed seed.
func overloadGate() *fairness.Config {
	return &fairness.Config{
		MaxConcurrent: 2,
		MaxWaiters:    2,
		MaxWait:       10 * time.Millisecond,
		Seed:          1309,
	}
}

// cacheTrace replays the mixed cheap/expensive workload against one cache:
// a handful of expensive answers (50ms recompute) revisited every round
// while a churn of one-off cheap queries (50µs) streams past. It returns
// the total recompute cost paid on misses (ms) — the figure a better
// admission policy drives down.
func cacheTrace(c *anscache.Cache) float64 {
	const (
		expensiveN    = 3
		rounds        = 50
		cheapPerRound = 6
		expensiveCost = 50 * time.Millisecond
		cheapCost     = 50 * time.Microsecond
	)
	expensiveVal := strings.Repeat("e", 2048)
	cheapVal := strings.Repeat("c", 256)
	var paid time.Duration
	lookup := func(q string, cost time.Duration, val string) {
		k := anscache.Key{Table: "t", Snapshot: 1, Query: q}
		if _, ok := c.Get(k); !ok {
			paid += cost
			c.Put(k, []byte(val), cost)
		}
	}
	cheapSeq := 0
	for r := 0; r < rounds; r++ {
		lookup(fmt.Sprintf("expensive%d", r%expensiveN), expensiveCost, expensiveVal)
		for j := 0; j < cheapPerRound; j++ {
			cheapSeq++
			lookup(fmt.Sprintf("cheap%d", cheapSeq), cheapCost, cheapVal)
		}
	}
	return float64(paid.Microseconds()) / 1000
}

// overloadExperiment runs the whole drill and returns the raw report.
func overloadExperiment() (*overloadReport, error) {
	rep := &overloadReport{}

	// Phase 1 — fairness on, nobody flooding: the well-behaved baseline.
	srv, err := overloadServer(overloadGate())
	if err != nil {
		return nil, err
	}
	rep.WBNoFloodMs, rep.WBNoFloodErrs = wbPhase(srv, overloadWBRequests)

	// Phase 2 — fairness on, one client flooding cold queries.
	srv, err = overloadServer(overloadGate())
	if err != nil {
		return nil, err
	}
	stop := flood(srv)
	rep.WBFloodMs, rep.WBFloodErrs = wbPhase(srv, overloadWBRequests)
	rep.FloodRequests, rep.Flood429s, rep.FloodOKs, rep.FloodOther = stop()
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/debug/stats", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &rep.Stats); err != nil {
		return nil, fmt.Errorf("overload stats: %v", err)
	}

	// Phase 3 — control: the same flood with the throttler off.
	srv, err = overloadServer(nil)
	if err != nil {
		return nil, err
	}
	stop = flood(srv)
	rep.WBNoFairMs, rep.WBNoFairErrs = wbPhase(srv, overloadNoFairWBReqs)
	stop()

	// Cache admission trace, per capacity.
	for _, capacity := range []int{4, 8, 16} {
		lru, gdsf := anscache.NewLRU(capacity), anscache.New(capacity)
		out := traceOutcome{
			Capacity:   capacity,
			LRUPaidMs:  cacheTrace(lru),
			GDSFPaidMs: cacheTrace(gdsf),
		}
		out.LRUSavedNs = lru.Stats().SavedNanos
		out.GDSFSavedNs = gdsf.Stats().SavedNanos
		rep.Trace = append(rep.Trace, out)
	}
	return rep, nil
}

// FigOverload measures the overload drill: the latency a well-behaved
// client pays at p50/p90/p99 with nobody flooding versus with one client
// flooding cold queries behind the SFB throttler, plus the recompute cost
// the answer cache's admission policy pays on a mixed cheap/expensive
// trace (plain LRU vs the cost-aware default). All series are
// lower-is-better, so the CI bench gate guards them directly; the
// throttler-off control numbers land in the notes. Request it with
// `topk-bench -fig overload`.
func FigOverload() (*Figure, error) {
	rep, err := overloadExperiment()
	if err != nil {
		return nil, err
	}
	ps := []float64{50, 90, 99}
	base := Series{Name: "well-behaved latency, no flood (ms)"}
	flooded := Series{Name: "well-behaved latency, flood + fairness (ms)"}
	for _, p := range ps {
		base.X = append(base.X, p)
		base.Y = append(base.Y, pctile(rep.WBNoFloodMs, p))
		flooded.X = append(flooded.X, p)
		flooded.Y = append(flooded.Y, pctile(rep.WBFloodMs, p))
	}
	lruPaid := Series{Name: "cache recompute paid, LRU (ms)"}
	gdsfPaid := Series{Name: "cache recompute paid, cost-aware (ms)"}
	for _, tr := range rep.Trace {
		lruPaid.X = append(lruPaid.X, float64(tr.Capacity))
		lruPaid.Y = append(lruPaid.Y, tr.LRUPaidMs)
		gdsfPaid.X = append(gdsfPaid.X, float64(tr.Capacity))
		gdsfPaid.Y = append(gdsfPaid.Y, tr.GDSFPaidMs)
	}
	var fairNote string
	if f := rep.Stats.Fairness; f != nil {
		fairNote = fmt.Sprintf("throttler: %d sheds (%d queue, %d probabilistic), flooder attributed %d",
			f.Sheds, f.QueueSheds, f.ProbSheds, f.TopShedders["flooder"])
	}
	return &Figure{
		ID:     "overload",
		Title:  "Overload drill: well-behaved client latency under a flood; cache recompute paid by policy",
		Series: []Series{base, flooded, lruPaid, gdsfPaid},
		Notes: []string{
			fmt.Sprintf("well-behaved client: %d requests per phase, errors no-flood=%d flood=%d",
				overloadWBRequests, rep.WBNoFloodErrs, rep.WBFloodErrs),
			fmt.Sprintf("flooder: %d requests, %d shed with 429, %d admitted", rep.FloodRequests, rep.Flood429s, rep.FloodOKs),
			fairNote,
			fmt.Sprintf("control (throttler off, same flood): well-behaved p99 %.2fms, errors %d",
				pctile(rep.WBNoFairMs, 99), rep.WBNoFairErrs),
			"cache trace: 3 expensive answers (50ms) revisited among a churn of one-off cheap queries (50us)",
		},
	}, nil
}
