package bench

import (
	"fmt"
	"math/rand"
	"time"

	"probtopk/internal/pmf"
)

// dpKernelLineCounts are the per-distribution line counts the kernel is
// timed at: the small/typical/large regimes of the DP's intermediate
// distributions (the default line cap is 200).
var dpKernelLineCounts = []int{16, 64, 256}

// dpKernelDist builds one sorted L-line input distribution shaped like a DP
// intermediate: strictly increasing scores, per-line masses, and (when
// tracked) representative vectors of a few tuples with boundary
// annotations. Vectors are heap-allocated so the timed kernel's arena can
// reset freely between calls.
func dpKernelDist(rng *rand.Rand, lines int, tracked bool) *pmf.Dist {
	ls := make([]pmf.Line, lines)
	score := rng.Float64()
	for i := range ls {
		score += 0.1 + rng.Float64()
		ls[i] = pmf.Line{Score: score, Prob: 0.001 + rng.Float64()/float64(lines)}
		if tracked {
			var v *pmf.Vector
			for d := 0; d < 3; d++ {
				v = &pmf.Vector{Tuple: rng.Intn(200), Next: v}
			}
			ls[i].Vec = v
			ls[i].VecProb = ls[i].Prob * rng.Float64()
			ls[i].VecBound = score - rng.Float64()
		}
	}
	return pmf.FromLines(ls)
}

// dpKernelMeasure times one GridCombiner.Combine call — the DP's per-cell
// kernel — over L-line skip and take inputs with the output capped at L
// lines (so the grid path engages, as in the steady-state DP where the
// intermediates sit at the cap). Returns µs per call.
func dpKernelMeasure(lines int, tracked bool) float64 {
	rng := rand.New(rand.NewSource(int64(lines)))
	skip := dpKernelDist(rng, lines, tracked)
	take := dpKernelDist(rng, lines, tracked)
	branches := []pmf.TakeBranch{{Shift: 42.5, Factor: 0.6, Tuple: 7}}
	var skipTrue func(float64) float64
	var ar pmf.VectorArena
	g := pmf.GridCombiner{}
	if tracked {
		g.Arena = &ar
		skipTrue = func(bound float64) float64 { return 0.9 }
	}
	dst := pmf.New()
	run := func(reps int) time.Duration {
		start := time.Now()
		for r := 0; r < reps; r++ {
			ar.Reset() // dst is fully rewritten below; its old nodes are dead
			dst = g.Combine(dst, skip, 0.4, take, branches, lines, pmf.CoalescePlainAverage, tracked, skipTrue)
		}
		return time.Since(start)
	}
	run(50) // warm the combiner's cell buffers and dst's capacity
	reps := 200_000 / lines
	best := run(reps)
	// Three samples, keep the fastest: the per-call cost is deterministic,
	// so the minimum is the signal and anything above it is scheduler/GC
	// noise.
	for i := 0; i < 2; i++ {
		if d := run(reps); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(reps) / 1e3
}

// FigDPKernel measures the per-cell cost of the fused combine+coalesce
// kernel — the instruction-level hot loop everything else multiplies — at
// growing line counts, with and without vector tracking. Units are µs per
// Combine call (not ms like the serving figures), so the -compare floor is
// three orders of magnitude tighter here: exactly what a microbenchmark of
// a branch-free inner loop wants.
func FigDPKernel() (*Figure, error) {
	tracked := Series{Name: "tracked vectors (µs/op)"}
	untracked := Series{Name: "untracked (µs/op)"}
	for _, lines := range dpKernelLineCounts {
		tracked.X = append(tracked.X, float64(lines))
		tracked.Y = append(tracked.Y, dpKernelMeasure(lines, true))
		untracked.X = append(untracked.X, float64(lines))
		untracked.Y = append(untracked.Y, dpKernelMeasure(lines, false))
	}
	return &Figure{
		ID:     "dpkernel",
		Title:  "DP per-cell kernel: GridCombiner.Combine µs/op vs line count",
		Series: []Series{tracked, untracked},
		Notes: []string{
			"one call = grid-coalescing merge of L-line skip and take inputs capped at L output lines",
			fmt.Sprintf("line counts %v; best of 3 batches; vectors heap-built, kernel uses an arena", dpKernelLineCounts),
			"µs units (serving figures use ms): the compare floor bites at 50ns here",
		},
	}, nil
}
