package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"probtopk/internal/stream"
	"probtopk/internal/uncertain"
)

// dynamicPushes is how many pushes each dynamic-index series measures, and
// dynamicWarmup how many run untimed first.
const (
	dynamicPushes = 200
	dynamicWarmup = 20
)

// flatWindow reimplements the retired suffix-era window maintenance as the
// benchmark baseline: the canonical rank order lived in a flat slice, so a
// mid-rank push paid an O(n) memmove for the eviction and another for the
// insert, before the next query re-prepared the rank suffix below the
// change. The dynamic index replaces this with O(log n) treap work.
type flatWindow struct {
	capacity int
	seq      uint64
	arrival  []flatEntry
	ranked   []flatEntry
}

type flatEntry struct {
	seq   uint64
	tuple uncertain.Tuple
}

func flatBefore(a, b flatEntry) bool {
	if a.tuple.Score != b.tuple.Score {
		return a.tuple.Score > b.tuple.Score
	}
	if a.tuple.Prob != b.tuple.Prob {
		return a.tuple.Prob > b.tuple.Prob
	}
	return a.seq < b.seq
}

// fill bulk-loads the window (sorting once), so figure setup does not pay
// the O(n²) cost of n incremental fills.
func (w *flatWindow) fill(tuples []uncertain.Tuple) {
	for _, t := range tuples {
		w.seq++
		w.arrival = append(w.arrival, flatEntry{seq: w.seq, tuple: t})
	}
	w.ranked = append([]flatEntry(nil), w.arrival...)
	sort.Slice(w.ranked, func(i, j int) bool { return flatBefore(w.ranked[i], w.ranked[j]) })
}

func (w *flatWindow) push(t uncertain.Tuple) {
	if len(w.arrival) == w.capacity {
		old := w.arrival[0]
		copy(w.arrival, w.arrival[1:])
		w.arrival = w.arrival[:len(w.arrival)-1]
		pos := sort.Search(len(w.ranked), func(i int) bool { return !flatBefore(w.ranked[i], old) })
		for pos < len(w.ranked) && w.ranked[pos].seq != old.seq {
			pos++
		}
		copy(w.ranked[pos:], w.ranked[pos+1:])
		w.ranked = w.ranked[:len(w.ranked)-1]
	}
	w.seq++
	e := flatEntry{seq: w.seq, tuple: t}
	w.arrival = append(w.arrival, e)
	pos := sort.Search(len(w.ranked), func(i int) bool { return flatBefore(e, w.ranked[i]) })
	w.ranked = append(w.ranked, flatEntry{})
	copy(w.ranked[pos+1:], w.ranked[pos:])
	w.ranked[pos] = e
}

// dynamicTuples pre-generates the window fill plus the measured pushes, with
// uniform random scores so each push lands mid-rank on average.
func dynamicTuples(n, pushes int) (fill, push []uncertain.Tuple) {
	rng := rand.New(rand.NewSource(1))
	mk := func(i int) uncertain.Tuple {
		return uncertain.Tuple{ID: fmt.Sprintf("t%d", i), Score: rng.Float64() * float64(n), Prob: 0.5}
	}
	for i := 0; i < n; i++ {
		fill = append(fill, mk(i))
	}
	for i := 0; i < pushes; i++ {
		push = append(push, mk(n+i))
	}
	return fill, push
}

func medianOf(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	s := append([]float64(nil), ys...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// FigDynamic measures the tentpole of the fully dynamic prepared index: the
// per-push cost of maintaining the canonical §3.4 rank order of a sliding
// window when pushes land mid-rank, comparing the retired suffix-era flat
// slice (O(n) memmove per push) against the dynamic treap index (O(log n)
// structural work). It is not a figure from the paper; request it with
// `topk-bench -fig dynamic`, typically alongside -json so the bench-compare
// gate can watch the dynamic series for regressions.
func FigDynamic() (*Figure, error) {
	var allSeries []Series
	var notes []string
	for _, n := range []int{10_000, 100_000} {
		fill, pushes := dynamicTuples(n, dynamicWarmup+dynamicPushes)

		fw := &flatWindow{capacity: n}
		fw.fill(fill)
		suffix := Series{Name: fmt.Sprintf("push suffix-era n=%d (ms)", n)}
		for i, t := range pushes {
			start := time.Now()
			fw.push(t)
			ms := float64(time.Since(start).Nanoseconds()) / 1e6
			if i < dynamicWarmup {
				continue
			}
			suffix.X = append(suffix.X, float64(i-dynamicWarmup))
			suffix.Y = append(suffix.Y, ms)
		}

		w, err := stream.NewWindow(n)
		if err != nil {
			return nil, err
		}
		for _, t := range fill {
			if _, err := w.Push(t); err != nil {
				return nil, err
			}
		}
		dyn := Series{Name: fmt.Sprintf("push dynamic index n=%d (ms)", n)}
		for i, t := range pushes {
			start := time.Now()
			if _, err := w.Push(t); err != nil {
				return nil, err
			}
			ms := float64(time.Since(start).Nanoseconds()) / 1e6
			if i < dynamicWarmup {
				continue
			}
			dyn.X = append(dyn.X, float64(i-dynamicWarmup))
			dyn.Y = append(dyn.Y, ms)
		}

		ms, md := medianOf(suffix.Y), medianOf(dyn.Y)
		speed := 0.0
		if md > 0 {
			speed = ms / md
		}
		notes = append(notes, fmt.Sprintf(
			"n=%d: median push %.4f ms suffix-era vs %.4f ms dynamic (%.0fx)", n, ms, md, speed))
		allSeries = append(allSeries, suffix, dyn)
	}
	return &Figure{
		ID:     "dynamic",
		Title:  "Mid-rank push cost: suffix-era O(n) slice vs O(log n) dynamic index",
		Series: allSeries,
		Notes: append(notes,
			"suffix-era = retired flat-slice maintenance (memmove per eviction and insert)",
			"dynamic = uncertain.Index treap push (the current stream.Window path)"),
	}, nil
}
