package worlds

import (
	"math"
	"math/rand"
	"testing"

	"probtopk/internal/fixtures"
	"probtopk/internal/uncertain"
)

func prep(t *testing.T, tab *uncertain.Table) *uncertain.Prepared {
	t.Helper()
	p, err := uncertain.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSoldierWorldCount(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	if c := Count(p); c != fixtures.SoldierWorlds {
		t.Fatalf("Count = %v, want %d", c, fixtures.SoldierWorlds)
	}
	ws, err := All(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != fixtures.SoldierWorlds {
		t.Fatalf("len(All) = %d, want %d", len(ws), fixtures.SoldierWorlds)
	}
	var mass float64
	for _, w := range ws {
		mass += w.Prob
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Fatalf("world probabilities sum to %v", mass)
	}
}

func TestAllLimit(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	if _, err := All(p, 5); err == nil {
		t.Fatal("expected ErrTooManyWorlds")
	} else if _, ok := err.(ErrTooManyWorlds); !ok {
		t.Fatalf("err = %T", err)
	}
	if _, err := ExactDistribution(p, 2, 5); err == nil {
		t.Fatal("ExactDistribution should respect limit")
	}
	if _, err := ExactVectorProbs(p, 2, 5); err == nil {
		t.Fatal("ExactVectorProbs should respect limit")
	}
}

// TestSoldierDistribution reproduces Figure 3: the exact PMF of top-2 total
// scores of Example 1.
func TestSoldierDistribution(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	d, err := ExactDistribution(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fixtures.SoldierDistribution()
	if d.Len() != len(want) {
		t.Fatalf("lines = %d, want %d", d.Len(), len(want))
	}
	for _, l := range d.Lines() {
		w, ok := want[l.Score]
		if !ok {
			t.Fatalf("unexpected score %v", l.Score)
		}
		if math.Abs(l.Prob-w) > 1e-12 {
			t.Fatalf("Pr(%v) = %v, want %v", l.Score, l.Prob, w)
		}
	}
	if math.Abs(d.Mean()-fixtures.SoldierExpectedScore) > 1e-9 {
		t.Fatalf("mean = %v, want %v", d.Mean(), fixtures.SoldierExpectedScore)
	}
	if math.Abs(d.TailProb(118)-fixtures.SoldierTailAboveUTopk) > 1e-12 {
		t.Fatalf("Pr(>118) = %v", d.TailProb(118))
	}
}

// TestSoldierUTopk verifies the headline observation of §1: U-Top2 is
// <T2, T6> with probability 0.2 and the atypical score 118.
func TestSoldierUTopk(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	vec, prob, err := UTopkOracle(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := p.IDs(vec)
	if len(ids) != 2 || ids[0] != "T2" || ids[1] != "T6" {
		t.Fatalf("U-Top2 = %v, want [T2 T6]", ids)
	}
	if math.Abs(prob-fixtures.SoldierUTopkProb) > 1e-12 {
		t.Fatalf("prob = %v, want %v", prob, fixtures.SoldierUTopkProb)
	}
	if s := p.TotalScore(vec); s != fixtures.SoldierUTopkScore {
		t.Fatalf("score = %v, want %v", s, fixtures.SoldierUTopkScore)
	}
}

// TestSoldierVectorProbs checks the in-text vector probabilities: (T3, T2)
// has probability 0.16 and (T7, T3) 0.12.
func TestSoldierVectorProbs(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	probs, err := ExactVectorProbs(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	find := func(a, b string) float64 {
		var pos []int
		for i, tp := range p.Tuples {
			if tp.ID == a || tp.ID == b {
				pos = append(pos, i)
			}
		}
		return probs[VecKey(pos)]
	}
	if got := find("T3", "T2"); math.Abs(got-fixtures.SoldierTypical1Prob) > 1e-12 {
		t.Fatalf("Pr(T3,T2) = %v, want %v", got, fixtures.SoldierTypical1Prob)
	}
	if got := find("T7", "T3"); math.Abs(got-fixtures.SoldierProb235) > 1e-12 {
		t.Fatalf("Pr(T7,T3) = %v, want %v", got, fixtures.SoldierProb235)
	}
	// Probabilities of all vectors sum to 1 here (every world has ≥2 tuples
	// and no ties, so each world has exactly one top-2 vector).
	var mass float64
	for _, pr := range probs {
		mass += pr
	}
	if math.Abs(mass-1) > 1e-12 {
		t.Fatalf("vector probs sum to %v", mass)
	}
}

// TestTopKVectorsTies mirrors the paper's Example 3: with tie groups
// g1={a,b} (score 9), g2={c,d,e} (score 8), g3={f,g,h} (score 7) all present,
// the top-7 has C(3,2)=3 vectors, all containing g1 and g2.
func TestTopKVectorsTies(t *testing.T) {
	tab := uncertain.NewTable()
	for _, tp := range []struct {
		id    string
		score float64
	}{{"a", 9}, {"b", 9}, {"c", 8}, {"d", 8}, {"e", 8}, {"f", 7}, {"g", 7}, {"h", 7}} {
		tab.AddIndependent(tp.id, tp.score, 0.9)
	}
	p := prep(t, tab)
	w := World{Present: []int{0, 1, 2, 3, 4, 5, 6, 7}, Prob: 1}
	vs := TopKVectors(p, w, 7)
	if len(vs) != 3 {
		t.Fatalf("vectors = %d, want 3", len(vs))
	}
	for _, v := range vs {
		if len(v) != 7 {
			t.Fatalf("vector size = %d", len(v))
		}
		s, ok := TopKScore(p, w, 7)
		if !ok {
			t.Fatal("TopKScore not ok")
		}
		if got := p.TotalScore(v); got != s {
			t.Fatalf("tie vectors disagree on score: %v vs %v", got, s)
		}
	}
}

func TestTopKScoreShortWorld(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	if _, ok := TopKScore(p, World{Present: []int{0}}, 2); ok {
		t.Fatal("short world should not have a top-2")
	}
	if vs := TopKVectors(p, World{Present: []int{0}}, 2); vs != nil {
		t.Fatal("short world should have no top-2 vectors")
	}
}

func TestVecKey(t *testing.T) {
	if VecKey([]int{3, 1, 2}) != "1,2,3" {
		t.Fatalf("VecKey = %q", VecKey([]int{3, 1, 2}))
	}
	if VecKey(nil) != "" {
		t.Fatal("empty key")
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	n := 0
	Enumerate(p, func(World) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d worlds", n)
	}
}

func TestSampleAndMonteCarlo(t *testing.T) {
	p := prep(t, fixtures.Soldier())
	rng := rand.New(rand.NewSource(1))
	// Monte-Carlo mean should approach the exact mean 164.1.
	d := MonteCarloDistribution(p, 2, 200_000, rng)
	if math.Abs(d.Mean()-fixtures.SoldierExpectedScore) > 0.5 {
		t.Fatalf("MC mean = %v, want ≈ %v", d.Mean(), fixtures.SoldierExpectedScore)
	}
	if math.Abs(d.TotalMass()-1) > 1e-9 {
		t.Fatalf("MC mass = %v (every soldier world has ≥ 2 tuples)", d.TotalMass())
	}
	// Sampled worlds respect ME rules.
	for i := 0; i < 1000; i++ {
		w := Sample(p, rng)
		seen := map[int]bool{}
		for _, pos := range w.Present {
			g := p.Tuples[pos].Group
			if seen[g] {
				t.Fatal("sampled world violates ME rule")
			}
			seen[g] = true
		}
	}
}

func TestParseVecKey(t *testing.T) {
	vec, err := parseVecKey("3,0,12")
	if err != nil {
		t.Fatalf("parseVecKey: %v", err)
	}
	if len(vec) != 3 || vec[0] != 3 || vec[1] != 0 || vec[2] != 12 {
		t.Fatalf("parseVecKey = %v, want [3 0 12]", vec)
	}
	for _, bad := range []string{"", "1,x", "1,,2", "1, 2"} {
		if _, err := parseVecKey(bad); err == nil {
			t.Fatalf("parseVecKey(%q) accepted a corrupt key", bad)
		}
	}
}
