// Package worlds implements the possible-worlds semantics of probabilistic
// tables (§1, Figure 2 of the paper): exact enumeration of all worlds of an
// uncertain table, top-k extraction inside a world under score ties
// (Theorem 1), the exact top-k score distribution, and exact per-vector
// top-k probabilities.
//
// Enumeration is exponential in the number of ME groups and exists as the
// ground-truth oracle for the efficient algorithms in internal/core, for
// Figure 2-style displays, and for Monte-Carlo validation on larger tables.
package worlds

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"probtopk/internal/pmf"
	"probtopk/internal/uncertain"
)

// zeroProb is the tolerance under which a group outcome is treated as
// impossible and skipped during enumeration, matching the paper's Figure 2,
// which lists only worlds of positive probability.
const zeroProb = 1e-15

// World is one possible world: the prepared positions of the tuples that
// appear, in rank order, together with the world's probability.
type World struct {
	Present []int
	Prob    float64
}

// ErrTooManyWorlds is returned by enumeration when the world count exceeds
// the caller's limit.
type ErrTooManyWorlds struct{ Limit int }

func (e ErrTooManyWorlds) Error() string {
	return fmt.Sprintf("worlds: table has more than %d possible worlds", e.Limit)
}

// Count returns the number of positive-probability possible worlds of p
// (product over groups of the number of positive-probability outcomes).
func Count(p *uncertain.Prepared) float64 {
	total := 1.0
	for g := 0; g < p.NumGroups(); g++ {
		members := p.GroupMembers(g)
		if len(members) == 0 {
			continue
		}
		outcomes := len(members)
		var mass float64
		for _, m := range members {
			mass += p.Tuples[m].Prob
		}
		if 1-mass > zeroProb {
			outcomes++
		}
		total *= float64(outcomes)
	}
	return total
}

// Enumerate yields every positive-probability possible world of p. The
// Present slice passed to yield is reused between calls; the callback must
// copy it if it retains it. Enumeration stops early if yield returns false.
func Enumerate(p *uncertain.Prepared, yield func(World) bool) {
	type groupChoice struct {
		members []int
		none    float64 // probability that no member appears (< 0 if impossible)
	}
	var groups []groupChoice
	for g := 0; g < p.NumGroups(); g++ {
		members := p.GroupMembers(g)
		if len(members) == 0 {
			continue
		}
		var mass float64
		for _, m := range members {
			mass += p.Tuples[m].Prob
		}
		gc := groupChoice{members: members, none: 1 - mass}
		groups = append(groups, gc)
	}
	present := make([]int, 0, p.Len())
	var rec func(gi int, prob float64) bool
	rec = func(gi int, prob float64) bool {
		if gi == len(groups) {
			sorted := append([]int(nil), present...)
			sort.Ints(sorted)
			return yield(World{Present: sorted, Prob: prob})
		}
		g := groups[gi]
		if g.none > zeroProb {
			if !rec(gi+1, prob*g.none) {
				return false
			}
		}
		for _, m := range g.members {
			pm := p.Tuples[m].Prob
			if pm <= zeroProb {
				continue
			}
			present = append(present, m)
			ok := rec(gi+1, prob*pm)
			present = present[:len(present)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0, 1)
}

// All collects every possible world, failing with ErrTooManyWorlds if more
// than limit worlds exist (limit ≤ 0 means no limit).
func All(p *uncertain.Prepared, limit int) ([]World, error) {
	if limit > 0 && Count(p) > float64(limit) {
		return nil, ErrTooManyWorlds{Limit: limit}
	}
	var out []World
	Enumerate(p, func(w World) bool {
		out = append(out, World{Present: append([]int(nil), w.Present...), Prob: w.Prob})
		return true
	})
	return out, nil
}

// TopKScore returns the total score of the top-k tuples of world w. When
// score ties straddle the k-th position, all top-k vectors of the world have
// the same total score (Theorem 1), so the result is still well defined.
// ok is false when the world has fewer than k tuples.
func TopKScore(p *uncertain.Prepared, w World, k int) (score float64, ok bool) {
	if len(w.Present) < k {
		return 0, false
	}
	// Present is in ascending position order = descending rank order is the
	// same ordering, since prepared positions are rank-sorted.
	var s float64
	for _, pos := range w.Present[:k] {
		s += p.Tuples[pos].Score
	}
	return s, true
}

// TopKVectors returns every top-k tuple vector of world w under Theorem 1:
// if the k-th position falls inside a tie group of the world that contributes
// m of its |g| tuples, there are C(|g|, m) vectors. Each vector lists
// prepared positions in rank order. Returns nil when the world has fewer
// than k tuples.
func TopKVectors(p *uncertain.Prepared, w World, k int) [][]int {
	if len(w.Present) < k {
		return nil
	}
	boundaryScore := p.Tuples[w.Present[k-1]].Score
	// head: tuples strictly above the boundary tie group.
	var head []int
	var group []int // members of the boundary tie group present in w
	for _, pos := range w.Present {
		sc := p.Tuples[pos].Score
		switch {
		case sc > boundaryScore && len(group) == 0:
			head = append(head, pos)
		case sc == boundaryScore:
			group = append(group, pos)
		case sc < boundaryScore:
			// done: positions are rank sorted
		}
		if sc < boundaryScore {
			break
		}
	}
	m := k - len(head) // tuples the tie group contributes
	var out [][]int
	comb := make([]int, m)
	var rec func(start, idx int)
	rec = func(start, idx int) {
		if idx == m {
			v := make([]int, 0, k)
			v = append(v, head...)
			v = append(v, comb...)
			out = append(out, v)
			return
		}
		for i := start; i <= len(group)-(m-idx); i++ {
			comb[idx] = group[i]
			rec(i+1, idx+1)
		}
	}
	rec(0, 0)
	return out
}

// ExactDistribution computes the exact top-k total-score distribution of p by
// full enumeration: the probability of a score is the sum of the
// probabilities of all worlds whose top-k vectors have that score (§2.3).
// Worlds with fewer than k tuples contribute no mass, so the total mass is
// Pr(at least k tuples appear). limit guards the enumeration size as in All.
func ExactDistribution(p *uncertain.Prepared, k, limit int) (*pmf.Dist, error) {
	if limit > 0 && Count(p) > float64(limit) {
		return nil, ErrTooManyWorlds{Limit: limit}
	}
	var lines []pmf.Line
	Enumerate(p, func(w World) bool {
		if s, ok := TopKScore(p, w, k); ok {
			lines = append(lines, pmf.Line{Score: s, Prob: w.Prob})
		}
		return true
	})
	return pmf.FromLines(lines), nil
}

// VecKey canonically encodes a vector of prepared positions (as a set) for
// map keys.
func VecKey(positions []int) string {
	s := append([]int(nil), positions...)
	sort.Ints(s)
	var b strings.Builder
	for i, v := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// ExactVectorProbs returns, for every k-tuple vector that is a top-k vector
// of some world, the probability that it is a top-k vector (the sum of the
// probabilities of the worlds in which it is among the top-k vectors),
// keyed by VecKey. Under ties a world contributes to several vectors.
func ExactVectorProbs(p *uncertain.Prepared, k, limit int) (map[string]float64, error) {
	if limit > 0 && Count(p) > float64(limit) {
		return nil, ErrTooManyWorlds{Limit: limit}
	}
	probs := make(map[string]float64)
	Enumerate(p, func(w World) bool {
		for _, v := range TopKVectors(p, w, k) {
			probs[VecKey(v)] += w.Prob
		}
		return true
	})
	return probs, nil
}

// UTopkOracle returns the vector (prepared positions, rank order) with the
// maximum probability of being a top-k vector, and that probability —
// the U-Topk answer computed by brute force. Deterministic tie-break: the
// lexicographically smallest key wins.
func UTopkOracle(p *uncertain.Prepared, k, limit int) ([]int, float64, error) {
	probs, err := ExactVectorProbs(p, k, limit)
	if err != nil {
		return nil, 0, err
	}
	bestKey, bestProb := "", -1.0
	for key, pr := range probs {
		if pr > bestProb+1e-15 || (pr > bestProb-1e-15 && (bestKey == "" || key < bestKey)) {
			bestKey, bestProb = key, pr
		}
	}
	if bestKey == "" {
		return nil, 0, nil
	}
	vec, err := parseVecKey(bestKey)
	if err != nil {
		return nil, 0, err
	}
	return vec, bestProb, nil
}

// parseVecKey parses a VecKey back into prepared positions. A key that
// does not round-trip is corrupt and must surface as an error, not as a
// silently zeroed position in the winning vector.
func parseVecKey(key string) ([]int, error) {
	parts := strings.Split(key, ",")
	vec := make([]int, len(parts))
	for i, s := range parts {
		pos, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("worlds: corrupt vector key %q: %v", key, err)
		}
		vec[i] = pos
	}
	return vec, nil
}

// Sample draws a random world from p's distribution using rng.
func Sample(p *uncertain.Prepared, rng *rand.Rand) World {
	var present []int
	for g := 0; g < p.NumGroups(); g++ {
		members := p.GroupMembers(g)
		if len(members) == 0 {
			continue
		}
		u := rng.Float64()
		acc := 0.0
		for _, m := range members {
			acc += p.Tuples[m].Prob
			if u < acc {
				present = append(present, m)
				break
			}
		}
	}
	sort.Ints(present)
	return World{Present: present, Prob: 1}
}

// MonteCarloDistribution estimates the top-k score distribution by sampling
// n worlds; used to validate the efficient algorithms on tables too large to
// enumerate. The result is normalized over successful draws (worlds with at
// least k tuples).
func MonteCarloDistribution(p *uncertain.Prepared, k, n int, rng *rand.Rand) *pmf.Dist {
	var lines []pmf.Line
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		w := Sample(p, rng)
		if s, ok := TopKScore(p, w, k); ok {
			lines = append(lines, pmf.Line{Score: s, Prob: inv})
		}
	}
	return pmf.FromLines(lines)
}
