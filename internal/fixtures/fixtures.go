// Package fixtures provides the paper's worked examples as shared test
// fixtures, together with every exact number the paper states about them, so
// multiple packages can assert against the same ground truth.
package fixtures

import "probtopk/internal/uncertain"

// Soldier returns the table of the paper's Example 1 (Figure 1): sensor
// estimates of soldiers' need for medical attention. ME rules: T2⊕T4⊕T7
// (soldier 2) and T3⊕T6 (soldier 3); T1 and T5 are independent.
func Soldier() *uncertain.Table {
	t := uncertain.NewTable()
	t.AddIndependent("T1", 49, 0.4)
	t.AddExclusive("T2", "soldier2", 60, 0.4)
	t.AddExclusive("T3", "soldier3", 110, 0.4)
	t.AddExclusive("T4", "soldier2", 80, 0.3)
	t.AddIndependent("T5", 56, 1.0)
	t.AddExclusive("T6", "soldier3", 58, 0.5)
	t.AddExclusive("T7", "soldier2", 125, 0.3)
	return t
}

// Exact values the paper states for Example 1 with k = 2 (Figures 2 and 3
// and the surrounding text).
const (
	// SoldierWorlds is the number of possible worlds (Figure 2).
	SoldierWorlds = 18
	// SoldierUTopkProb is the probability of the U-Top2 vector <T2, T6>.
	SoldierUTopkProb = 0.2
	// SoldierUTopkScore is the total score of <T2, T6>.
	SoldierUTopkScore = 118
	// SoldierExpectedScore is the expected top-2 total score.
	SoldierExpectedScore = 164.1
	// SoldierTailAboveUTopk is Pr(top-2 total score > 118).
	SoldierTailAboveUTopk = 0.76
	// SoldierProb235 is Pr(top-2 total score = 235), vector <T7, T3>.
	SoldierProb235 = 0.12
	// SoldierTypical1Score is the 1-Typical-Top2 score, vector (T3, T2).
	SoldierTypical1Score = 170
	// SoldierTypical1Prob is the probability of the (T3, T2) vector.
	SoldierTypical1Prob = 0.16
	// SoldierTypical3Dist is the expected distance achieved by the
	// 3-Typical-Top2 scores {118, 183, 235}.
	SoldierTypical3Dist = 6.6
)

// SoldierTypical3Scores lists the 3-Typical-Top2 scores from the paper.
func SoldierTypical3Scores() []float64 { return []float64{118, 183, 235} }

// SoldierDistribution returns the exact top-2 total-score PMF of the soldier
// table, computed by hand from the 18 possible worlds of Figure 2.
func SoldierDistribution() map[float64]float64 {
	return map[float64]float64{
		116: 0.04, // (T2, T5)
		118: 0.20, // (T2, T6) — the U-Top2 vector
		136: 0.03, // (T4, T5)
		138: 0.15, // (T4, T6)
		170: 0.16, // (T3, T2) — the 1-Typical vector
		181: 0.03, // (T7, T5)
		183: 0.15, // (T7, T6)
		190: 0.12, // (T3, T4)
		235: 0.12, // (T7, T3)
	}
}

// TieExample4 returns the seven leading tuples of the paper's Example 4:
// one tuple with score 10, a tie group of three at score 8, and a tie group
// of three at score 7. All tuples are independent.
func TieExample4() *uncertain.Table {
	t := uncertain.NewTable()
	t.AddIndependent("T1", 10, 0.5)
	t.AddIndependent("T2", 8, 0.3)
	t.AddIndependent("T3", 8, 0.2)
	t.AddIndependent("T4", 8, 0.1)
	t.AddIndependent("T5", 7, 0.5)
	t.AddIndependent("T6", 7, 0.4)
	t.AddIndependent("T7", 7, 0.2)
	return t
}

// TieExample4AtLeast2of3 is Pr(at least 2 tuples of the score-7 tie group
// appear) = 0.3, as computed in Example 4.
const TieExample4AtLeast2of3 = 0.3
