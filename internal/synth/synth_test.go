package synth

import (
	"math"
	"testing"

	"probtopk/internal/stats"
	"probtopk/internal/uncertain"
)

func TestGenerateDefaults(t *testing.T) {
	tab, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 200 {
		t.Fatalf("len = %d", tab.Len())
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	var scores, probs []float64
	for _, tp := range tab.Tuples() {
		scores = append(scores, tp.Score)
		probs = append(probs, tp.Prob)
	}
	if m := stats.Mean(scores); math.Abs(m-100) > 15 {
		t.Fatalf("score mean = %v", m)
	}
	if s := stats.StdDev(scores); math.Abs(s-60) > 12 {
		t.Fatalf("score std = %v", s)
	}
	if m := stats.Mean(probs); math.Abs(m-0.5) > 0.1 {
		t.Fatalf("prob mean = %v", m)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.Tuple(i) != b.Tuple(i) {
			t.Fatal("generation not deterministic")
		}
	}
	c, err := Generate(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.Tuple(i) != c.Tuple(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestCorrelationSign(t *testing.T) {
	for _, rho := range []float64{0, 0.8, -0.8} {
		tab, err := Generate(Config{N: 3000, Rho: rho, MEPortion: 0.0001, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		var scores, probs []float64
		for _, tp := range tab.Tuples() {
			// Exclude clamped probabilities, which bias the correlation.
			if tp.Prob > 0.03 && tp.Prob < 0.99 {
				scores = append(scores, tp.Score)
				probs = append(probs, tp.Prob)
			}
		}
		got := stats.Pearson(scores, probs)
		if math.Abs(got-rho) > 0.08 {
			t.Fatalf("rho=%v: measured %v", rho, got)
		}
	}
}

func TestMEPortionAndGroupShape(t *testing.T) {
	cfg := Config{N: 400, MEPortion: 0.4, SizeMin: 2, SizeMax: 5, GapMin: 1, GapMax: 10, Seed: 3}
	tab, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := uncertain.Prepare(tab)
	if err != nil {
		t.Fatal(err)
	}
	grouped := p.MExclusiveCount(p.Len())
	if frac := float64(grouped) / 400; math.Abs(frac-0.4) > 0.05 {
		t.Fatalf("grouped fraction = %v, want ≈ 0.4", frac)
	}
	for g := 0; g < p.NumGroups(); g++ {
		ms := p.GroupMembers(g)
		if len(ms) == 1 {
			continue
		}
		if len(ms) < 2 || len(ms) > 5 {
			t.Fatalf("group size %d outside [2, 5]", len(ms))
		}
		var sum float64
		for _, m := range ms {
			sum += p.Tuples[m].Prob
		}
		if sum > 1+1e-9 {
			t.Fatalf("group mass %v > 1", sum)
		}
	}
}

func TestTieQuantum(t *testing.T) {
	tab, err := Generate(Config{N: 300, TieQuantum: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, tp := range tab.Tuples() {
		if r := math.Mod(math.Abs(tp.Score), 10); r > 1e-9 && r < 10-1e-9 {
			t.Fatalf("score %v not a multiple of the quantum", tp.Score)
		}
		distinct[tp.Score] = true
	}
	if len(distinct) >= 300 {
		t.Fatal("quantization produced no ties")
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{N: -1},
		{Rho: 1.5},
		{MEPortion: -0.2},
		{SizeMin: 1, SizeMax: 1},
		{GapMin: 3, GapMax: 2},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("case %d should error", i)
		}
	}
}
