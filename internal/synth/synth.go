// Package synth generates the synthetic datasets of the paper's §5.4:
// tuples whose (score, probability) pairs are drawn from a bivariate normal
// distribution with configurable correlation ρ and score spread σ, with
// mutual-exclusion groups assigned over the score-sorted sequence by group
// size and member-gap ranges, and optional score quantization to induce
// ties.
package synth

import (
	"fmt"
	"sort"

	"probtopk/internal/stats"
	"probtopk/internal/uncertain"
)

// Config describes one synthetic dataset. Zero fields take the defaults of
// the paper's baseline experiment (Figure 13a): 200 tuples, score mean 100
// and deviation 60, probability mean 0.5 and deviation 0.2, independent
// scores/probabilities, 30% of tuples in ME groups of 2–3 with gaps of 1–8.
type Config struct {
	// N is the number of tuples.
	N int
	// ScoreMean and ScoreStd parameterize the score marginal.
	ScoreMean, ScoreStd float64
	// ProbMean and ProbStd parameterize the probability marginal before
	// clamping into [ProbFloor, 1].
	ProbMean, ProbStd float64
	// Rho is the score–probability correlation coefficient in [−1, 1].
	Rho float64
	// MEPortion is the fraction of tuples assigned to multi-tuple ME groups.
	MEPortion float64
	// SizeMin and SizeMax bound ME group sizes (≥ 2).
	SizeMin, SizeMax int
	// GapMin and GapMax bound the distance, in score-sorted positions,
	// between neighbouring members of a group (the paper's d).
	GapMin, GapMax int
	// TieQuantum, when positive, rounds scores to multiples of the quantum,
	// producing score ties.
	TieQuantum float64
	// ProbFloor is the lowest probability a tuple may have (default 0.02).
	ProbFloor float64
	// Seed drives the deterministic generator.
	Seed int64
}

// WithDefaults returns cfg with zero fields replaced by the Figure-13a
// baseline values.
func (c Config) WithDefaults() Config {
	if c.N == 0 {
		c.N = 200
	}
	if c.ScoreMean == 0 {
		c.ScoreMean = 100
	}
	if c.ScoreStd == 0 {
		c.ScoreStd = 60
	}
	if c.ProbMean == 0 {
		c.ProbMean = 0.5
	}
	if c.ProbStd == 0 {
		c.ProbStd = 0.2
	}
	if c.MEPortion == 0 {
		c.MEPortion = 0.3
	}
	if c.SizeMin == 0 {
		c.SizeMin = 2
	}
	if c.SizeMax == 0 {
		c.SizeMax = 3
	}
	if c.GapMin == 0 {
		c.GapMin = 1
	}
	if c.GapMax == 0 {
		c.GapMax = 8
	}
	if c.ProbFloor == 0 {
		c.ProbFloor = 0.02
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("synth: N must be ≥ 1, got %d", c.N)
	case c.Rho < -1 || c.Rho > 1:
		return fmt.Errorf("synth: rho must be in [-1, 1], got %v", c.Rho)
	case c.MEPortion < 0 || c.MEPortion > 1:
		return fmt.Errorf("synth: ME portion must be in [0, 1], got %v", c.MEPortion)
	case c.SizeMin < 2 || c.SizeMax < c.SizeMin:
		return fmt.Errorf("synth: group size range [%d, %d] invalid", c.SizeMin, c.SizeMax)
	case c.GapMin < 1 || c.GapMax < c.GapMin:
		return fmt.Errorf("synth: gap range [%d, %d] invalid", c.GapMin, c.GapMax)
	}
	return nil
}

// Generate builds the synthetic uncertain table described by cfg.
//
// Scores and probabilities are drawn jointly; probabilities are clamped to
// [ProbFloor, 1]. ME groups are then laid over the score-sorted sequence:
// group after group, each starting at the lowest unassigned position, with
// random size s ∈ [SizeMin, SizeMax] and random per-neighbour gaps
// d ∈ [GapMin, GapMax], until MEPortion of the tuples are grouped. Whenever a
// group's probabilities sum above 1, they are rescaled to total 0.999,
// preserving their ratios (the sum constraint of §2.1).
func Generate(cfg Config) (*uncertain.Table, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.New(cfg.Seed)

	type tup struct {
		score, prob float64
	}
	tuples := make([]tup, cfg.N)
	for i := range tuples {
		s, p := rng.BivariateNormal(cfg.ScoreMean, cfg.ScoreStd, cfg.ProbMean, cfg.ProbStd, cfg.Rho)
		if cfg.TieQuantum > 0 {
			s = quantize(s, cfg.TieQuantum)
		}
		tuples[i] = tup{score: s, prob: stats.Clamp(p, cfg.ProbFloor, 1)}
	}
	// Sort by score descending so group gaps are measured in rank positions,
	// as in the paper's Figures 15/16.
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].score > tuples[j].score })

	groupOf := make([]int, cfg.N) // 0 = independent
	next := 1
	target := int(cfg.MEPortion * float64(cfg.N))
	grouped := 0
	cursor := 0
	for grouped < target {
		for cursor < cfg.N && groupOf[cursor] != 0 {
			cursor++
		}
		if cursor >= cfg.N {
			break
		}
		size := rng.IntBetween(cfg.SizeMin, cfg.SizeMax)
		members := []int{cursor}
		pos := cursor
		for len(members) < size {
			pos += rng.IntBetween(cfg.GapMin, cfg.GapMax)
			for pos < cfg.N && groupOf[pos] != 0 {
				pos++
			}
			if pos >= cfg.N {
				break
			}
			members = append(members, pos)
		}
		if len(members) < 2 {
			break // cannot place any further group
		}
		for _, m := range members {
			groupOf[m] = next
		}
		grouped += len(members)
		next++
		cursor++
	}

	// Rescale group probabilities that exceed the unit-mass constraint.
	sums := make(map[int]float64)
	for i, g := range groupOf {
		if g != 0 {
			sums[g] += tuples[i].prob
		}
	}
	for i, g := range groupOf {
		if g != 0 && sums[g] > 1 {
			tuples[i].prob *= 0.999 / sums[g]
		}
	}

	tab := uncertain.NewTable()
	for i, tp := range tuples {
		group := ""
		if groupOf[i] != 0 {
			group = fmt.Sprintf("g%d", groupOf[i])
		}
		tab.Add(uncertain.Tuple{
			ID:    fmt.Sprintf("s%d", i+1),
			Score: tp.score,
			Prob:  tp.prob,
			Group: group,
		})
	}
	if err := tab.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated table invalid: %w", err)
	}
	return tab, nil
}

// quantize rounds x to the nearest multiple of q.
func quantize(x, q float64) float64 {
	n := x / q
	if n >= 0 {
		return q * float64(int64(n+0.5))
	}
	return q * float64(int64(n-0.5))
}
