// Package stats provides the small numeric/statistics substrate the
// empirical study needs: a seeded RNG with correlated bivariate-normal
// sampling (replacing the paper's use of the R statistical package),
// descriptive statistics, and Pearson correlation.
package stats

import (
	"math"
	"math/rand"

	"probtopk/internal/pmf"
)

// RNG is a deterministic random source for dataset generation.
type RNG struct {
	*rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed int64) *RNG { return &RNG{rand.New(rand.NewSource(seed))} }

// BivariateNormal draws one (x, y) pair from a bivariate normal distribution
// with the given means, standard deviations, and correlation coefficient
// rho ∈ [−1, 1], via the Cholesky construction
// y = μy + σy·(ρ·z1 + sqrt(1−ρ²)·z2).
func (r *RNG) BivariateNormal(muX, sigmaX, muY, sigmaY, rho float64) (x, y float64) {
	z1 := r.NormFloat64()
	z2 := r.NormFloat64()
	x = muX + sigmaX*z1
	y = muY + sigmaY*(rho*z1+math.Sqrt(1-rho*rho)*z2)
	return x, y
}

// IntBetween returns a uniform integer in [lo, hi] (inclusive). lo > hi
// panics; lo == hi returns lo.
func (r *RNG) IntBetween(lo, hi int) int {
	if lo > hi {
		panic("stats: IntBetween with lo > hi")
	}
	return lo + r.Intn(hi-lo+1)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Mean returns the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return pmf.Sum(xs) / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (NaN when empty).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	mu := Mean(xs)
	var k pmf.KahanSum
	for _, x := range xs {
		d := x - mu
		k.Add(d * d)
	}
	return math.Sqrt(k.Sum() / float64(len(xs)))
}

// MinMax returns the extrema of xs (NaNs when empty).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Pearson returns the sample Pearson correlation coefficient of (xs, ys).
// Returns NaN when the lengths differ, fewer than two points are given, or
// either series is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy pmf.KahanSum
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy.Add(dx * dy)
		sxx.Add(dx * dx)
		syy.Add(dy * dy)
	}
	den := math.Sqrt(sxx.Sum() * syy.Sum())
	if den == 0 {
		return math.NaN()
	}
	return sxy.Sum() / den
}
