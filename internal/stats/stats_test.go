package stats

import (
	"math"
	"testing"
)

func TestBivariateNormalMoments(t *testing.T) {
	cases := []struct{ rho float64 }{{0}, {0.8}, {-0.8}}
	for _, c := range cases {
		r := New(1)
		n := 200_000
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i], ys[i] = r.BivariateNormal(100, 60, 0.5, 0.2, c.rho)
		}
		if m := Mean(xs); math.Abs(m-100) > 1 {
			t.Fatalf("rho=%v: mean x = %v", c.rho, m)
		}
		if m := Mean(ys); math.Abs(m-0.5) > 0.01 {
			t.Fatalf("rho=%v: mean y = %v", c.rho, m)
		}
		if s := StdDev(xs); math.Abs(s-60) > 1 {
			t.Fatalf("rho=%v: std x = %v", c.rho, s)
		}
		if s := StdDev(ys); math.Abs(s-0.2) > 0.01 {
			t.Fatalf("rho=%v: std y = %v", c.rho, s)
		}
		if got := Pearson(xs, ys); math.Abs(got-c.rho) > 0.02 {
			t.Fatalf("rho=%v: measured correlation %v", c.rho, got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		x1, y1 := a.BivariateNormal(0, 1, 0, 1, 0.5)
		x2, y2 := b.BivariateNormal(0, 1, 0, 1, 0.5)
		if x1 != x2 || y1 != y2 {
			t.Fatal("same seed should reproduce the same stream")
		}
	}
}

func TestIntBetween(t *testing.T) {
	r := New(2)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntBetween(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntBetween out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("IntBetween never produced all values: %v", seen)
	}
	if r.IntBetween(4, 4) != 4 {
		t.Fatal("degenerate range")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("lo > hi should panic")
		}
	}()
	r.IntBetween(5, 3)
}

func TestClamp(t *testing.T) {
	if Clamp(-1, 0, 1) != 0 || Clamp(2, 0, 1) != 1 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp wrong")
	}
}

func TestDescriptive(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std = %v", got)
	}
	min, max := MinMax(xs)
	if min != 1 || max != 4 {
		t.Fatalf("minmax = %v %v", min, max)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Fatal("empty stats should be NaN")
	}
	if mn, mx := MinMax(nil); !math.IsNaN(mn) || !math.IsNaN(mx) {
		t.Fatal("empty minmax should be NaN")
	}
}

func TestPearsonEdgeCases(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Fatal("short series should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{1})) {
		t.Fatal("mismatched lengths should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Fatal("constant series should be NaN")
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", got)
	}
	if got := Pearson([]float64{1, 2, 3}, []float64{6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", got)
	}
}
