package probtopk

import (
	"probtopk/internal/typical"
)

// Typical returns the c-Typical-Topk answers of the distribution
// (Definitions 1 and 2 of the paper): c lines whose scores minimize the
// expected distance between a random top-k score and its nearest chosen
// score; each line's Vector is the most probable top-k vector with that
// score. The achieved expected distance is returned alongside.
//
// If c is at least the number of distinct scores, every line is returned and
// the cost is 0. Changing c is cheap relative to computing the distribution,
// as §4 notes — callers may re-invoke Typical with several c values.
func (d *Distribution) Typical(c int) ([]Line, float64, error) {
	ans, err := typical.Select(d.dist, c)
	if err != nil {
		return nil, 0, err
	}
	out := make([]Line, len(ans.Lines))
	for i, l := range ans.Lines {
		out[i] = d.line(l)
	}
	return out, ans.Cost, nil
}

// TypicalScores returns only the c-Typical-Topk scores, ascending.
func (d *Distribution) TypicalScores(c int) ([]float64, error) {
	ans, err := typical.Select(d.dist, c)
	if err != nil {
		return nil, err
	}
	return ans.Scores, nil
}

// CTypicalTopK is the one-call form of the paper's proposed semantics: it
// computes the top-k score distribution of t and returns the c typical
// vectors. opts as in TopKDistribution.
func CTypicalTopK(t *Table, k, c int, opts *Options) ([]Line, error) {
	dist, err := TopKDistribution(t, k, opts)
	if err != nil {
		return nil, err
	}
	lines, _, err := dist.Typical(c)
	return lines, err
}

// VectorEditDistance returns the set edit distance between two top-k
// vectors: the minimum number of single-tuple replacements (plus
// insertions/deletions for unequal lengths) turning one into the other.
// §4 of the paper suggests examining these distances across the c typical
// vectors: small distances mean the probable top-k sets largely agree.
func VectorEditDistance(a, b []string) int {
	inA := make(map[string]int, len(a))
	for _, t := range a {
		inA[t]++
	}
	common := 0
	for _, t := range b {
		if inA[t] > 0 {
			inA[t]--
			common++
		}
	}
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	return max - common
}

// TypicalSpread summarises the pairwise edit distances among the vectors of
// a c-Typical-Topk answer: mean and maximum. Per §4, the magnitude indicates
// how spread out the probable top-k vectors are in the k-dimensional vector
// space — small values mean a less uncertain result. Lines without vectors
// are ignored; fewer than two vectors yield zeros.
func TypicalSpread(lines []Line) (mean float64, max int) {
	var vecs [][]string
	for _, l := range lines {
		if len(l.Vector) > 0 {
			vecs = append(vecs, l.Vector)
		}
	}
	if len(vecs) < 2 {
		return 0, 0
	}
	var sum, pairs int
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			d := VectorEditDistance(vecs[i], vecs[j])
			sum += d
			pairs++
			if d > max {
				max = d
			}
		}
	}
	return float64(sum) / float64(pairs), max
}
