// Traffic reproduces the paper's §5.2 scenario: city planners query the k
// most congested road segments of an area measured by a vehicular testbed.
//
// Each road segment carries multiple delay measurements, binned into a
// discrete distribution: the bins are mutually exclusive uncertain tuples
// and the congestion score is speed_limit / (length / delay). The planners
// read the top-k total congestion score distribution — "when the total
// exceeds some threshold, spend funding to fix the traffic problem" — and
// the typical answers, instead of trusting the single U-Topk vector.
//
// Run with: go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"strings"

	"probtopk"
	"probtopk/internal/cartel"
)

func main() {
	// Synthesize an area of 120 road segments (the CarTel substitute; see
	// DESIGN.md §4), then bin each segment's delays into ≤4 bins.
	area := cartel.GenerateArea(cartel.Config{Segments: 120, Seed: 101})
	table, err := area.CongestionTable(4, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("area: %d segments → %d uncertain tuples\n\n", len(area.Segments), table.Len())

	const k = 5
	dist, err := probtopk.TopKDistribution(table, k, nil) // defaults: pτ=0.001, 200 lines
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top-%d total congestion score: mean %.1f, median %.1f, span [%.1f, %.1f]\n",
		k, dist.Mean(), dist.Median(), dist.Min(), dist.Max())
	fmt.Printf("scanned %d of %d tuples (Theorem 2)\n\n", dist.ScanDepth, table.Len())

	fmt.Println("distribution at bucket width 25 (the paper's 'any granularity' access):")
	for _, b := range dist.Histogram(25) {
		if b.Prob < 0.005 {
			continue
		}
		fmt.Printf("  [%6.1f, %6.1f)  %s %.3f\n", b.Lo, b.Hi,
			strings.Repeat("█", int(b.Prob*120)), b.Prob)
	}

	u, _ := dist.UTopK()
	fmt.Printf("\nU-Top%d: score %.1f, probability %.3g\n", k, u.Score, u.VectorProb)
	fmt.Printf("  segments: %s\n", strings.Join(u.Vector, " "))
	fmt.Printf("  Pr(actual top-%d total differs from it by > 10%%) = %.2f\n",
		k, 1-massNear(dist, u.Score, 0.10))

	lines, cost, err := dist.Typical(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3-Typical-Top%d (expected distance %.1f):\n", k, cost)
	for _, l := range lines {
		fmt.Printf("  score %7.1f  prob %.3g  segments %s\n",
			l.Score, l.VectorProb, strings.Join(l.Vector, " "))
	}

	// A funding decision: how likely is the congestion bad enough to act on?
	threshold := dist.Mean() * 1.25
	fmt.Printf("\nPr(total top-%d congestion > %.0f) = %.3f\n", k, threshold, dist.TailProb(threshold))
}

// massNear returns the probability mass within ±rel of score.
func massNear(d *probtopk.Distribution, score, rel float64) float64 {
	lo, hi := score*(1-rel), score*(1+rel)
	return d.CDF(hi) - d.CDF(lo)
}
