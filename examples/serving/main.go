// Serving starts the HTTP front-end in-process on a loopback port and
// drives it as a client would with curl: upload the paper's soldier table
// as CSV, query the top-2 score distribution, the 3-typical answer set and
// the U-Topk baseline, then repeat a query to show the derived-answer
// cache and mutate the table to show the snapshot semantics — every
// published state carries a process-unique snapshot stamp, queries answer
// against the stamped state they loaded (lock-free, so appends never wait
// for queries), and a new stamp means every cached answer of the old state
// is unreachable: served answers can never be stale.
//
// Run with: go run ./examples/serving
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"probtopk/internal/server"
)

const soldierCSV = `id,score,prob,group
T1,49,0.4,
T2,60,0.4,soldier2
T3,110,0.4,soldier3
T4,80,0.3,soldier2
T5,56,1.0,
T6,58,0.5,soldier3
T7,125,0.3,soldier2
`

func main() {
	// In a deployment this is `topkd -addr :8080`; here the same handler
	// runs on an httptest listener so the example is self-contained.
	ts := httptest.NewServer(server.New(server.Config{}))
	defer ts.Close()
	fmt.Println("serving on", ts.URL)

	// curl -X PUT --data-binary @soldier.csv -H 'Content-Type: text/csv' \
	//   $URL/tables/soldier
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/tables/soldier", strings.NewReader(soldierCSV))
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	var created server.TableInfo
	decode(must(http.DefaultClient.Do(req)), &created)
	fmt.Printf("upload: %d tuples, snapshot stamp %d\n", created.Tuples, created.Snapshot)

	// curl $URL/tables/soldier/topk?k=2&exact=true
	var dist server.DistributionResponse
	decode(must(http.Get(ts.URL+"/tables/soldier/topk?k=2&exact=true")), &dist)
	fmt.Printf("top-2 distribution: %d lines, mass %.2f, mean %.1f\n",
		len(dist.Lines), dist.TotalMass, dist.Stats.Mean)

	// curl $URL/tables/soldier/typical?k=2&c=3&exact=true
	var typ server.TypicalResponse
	decode(must(http.Get(ts.URL+"/tables/soldier/typical?k=2&c=3&exact=true")), &typ)
	fmt.Print("3-typical top-2 answers:")
	for _, l := range typ.Lines {
		fmt.Printf("  %g (p=%.2f, %v)", l.Score, l.Prob, l.Vector)
	}
	fmt.Println()

	// curl $URL/tables/soldier/baseline/utopk?k=2
	var base server.BaselineResponse
	decode(must(http.Get(ts.URL+"/tables/soldier/baseline/utopk?k=2")), &base)
	fmt.Printf("U-Top2 baseline: %v score %g (vector prob %.2f)\n",
		base.Line.Vector, base.Line.Score, base.Line.VectorProb)

	// The identical query again: served from the derived-answer cache.
	must(http.Get(ts.URL + "/tables/soldier/topk?k=2&exact=true"))
	var stats server.StatsResponse
	decode(must(http.Get(ts.URL+"/debug/stats")), &stats)
	fmt.Printf("after repeat: answer cache hits=%d misses=%d\n",
		stats.AnswerCache.Hits, stats.AnswerCache.Misses)

	// curl -X POST -d '{"tuples": [...]}' $URL/tables/soldier/tuples
	// A mutation publishes a NEW snapshot (fresh stamp): the append itself
	// only swaps an atomic pointer — it would not have waited even if a slow
	// query were mid-computation — and every answer cached under the old
	// stamp becomes unreachable, so nothing stale can ever be served.
	var appended server.TableInfo
	decode(must(http.Post(ts.URL+"/tables/soldier/tuples", "application/json",
		strings.NewReader(`{"tuples": [{"id": "T8", "score": 130, "prob": 0.8}]}`))), &appended)
	fmt.Printf("append: %d tuples, snapshot stamp %d -> %d\n",
		appended.Tuples, created.Snapshot, appended.Snapshot)
	decode(must(http.Get(ts.URL+"/tables/soldier/topk?k=2&exact=true")), &dist)
	fmt.Printf("after append: mean %.1f\n", dist.Stats.Mean)
	decode(must(http.Get(ts.URL+"/debug/stats")), &stats)
	fmt.Printf("cache invalidations=%d entries=%d\n",
		stats.AnswerCache.Invalidations, stats.AnswerCache.Entries)
}

// must drains one response, failing the example on a non-2xx status.
func must(resp *http.Response, err error) []byte {
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		log.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	return data
}

func decode(data []byte, v any) {
	if err := json.Unmarshal(data, v); err != nil {
		log.Fatalf("%v in %s", err, data)
	}
}
