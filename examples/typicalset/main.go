// Typicalset illustrates the paper's Example 2 — the information-theoretic
// motivation for typical answers: for 20 tosses of a biased coin
// (Pr(heads) = 0.6) scored by the number of heads, the single most probable
// outcome (all heads) is wildly atypical, while the typical score sits at
// 0.6·n.
//
// The same machinery that picks c-Typical-Topk vectors applies to any
// discrete distribution via probtopk.NewDistribution.
//
// Run with: go run ./examples/typicalset
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"probtopk"
)

func main() {
	const n = 20
	const p = 0.6

	scores := make([]float64, n+1)
	probs := make([]float64, n+1)
	for h := 0; h <= n; h++ {
		scores[h] = float64(h)
		probs[h] = binom(n, h) * math.Pow(p, float64(h)) * math.Pow(1-p, float64(n-h))
	}
	dist, err := probtopk.NewDistribution(scores, probs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("number of heads in %d tosses of a %.1f-biased coin:\n", n, p)
	for _, l := range dist.Lines() {
		fmt.Printf("  %2.0f  %s %.4f\n", l.Score, strings.Repeat("█", int(l.Prob*200)), l.Prob)
	}

	// The "U-Topk analogue": each single outcome (sequence) has probability
	// p^h (1-p)^(n-h); the most probable single sequence is all heads.
	allHeads := math.Pow(p, n)
	fmt.Printf("\nmost probable single sequence: all %d heads, probability %.3g — atypical!\n", n, allHeads)
	fmt.Printf("Pr(score < %d) = %.7f\n", n, dist.CDF(float64(n-1)))

	for _, c := range []int{1, 3} {
		lines, cost, err := dist.Typical(c)
		if err != nil {
			log.Fatal(err)
		}
		var ss []string
		for _, l := range lines {
			ss = append(ss, fmt.Sprintf("%.0f (p=%.3f)", l.Score, l.Prob))
		}
		fmt.Printf("%d-typical score(s): %s — expected distance %.2f\n", c, strings.Join(ss, ", "), cost)
	}
	fmt.Printf("\nthe 1-typical score ≈ %v = 0.6·n, exactly the typical-set prediction\n", 12)
}

func binom(n, k int) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c
}
