// Quickstart walks the paper's running example (Example 1, Figures 1–3):
// a table of mutually exclusive sensor estimates of soldiers' need for
// medical attention, queried for the top-2 most urgent cases.
//
// It shows why the U-Topk answer can be misleading — its score is atypical —
// and how the score distribution and c-Typical-Topk answers fix that.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"probtopk"
)

func main() {
	// One tuple per sensor estimate; estimates for the same soldier at the
	// same instant are mutually exclusive (at most one can be right).
	table := probtopk.NewTable()
	table.AddIndependent("T1", 49, 0.4)            // soldier 1
	table.AddExclusive("T2", "soldier2", 60, 0.4)  // soldier 2, estimate A
	table.AddExclusive("T3", "soldier3", 110, 0.4) // soldier 3, estimate A
	table.AddExclusive("T4", "soldier2", 80, 0.3)  // soldier 2, estimate B
	table.AddIndependent("T5", 56, 1.0)            // soldier 4
	table.AddExclusive("T6", "soldier3", 58, 0.5)  // soldier 3, estimate B
	table.AddExclusive("T7", "soldier2", 125, 0.3) // soldier 2, estimate C

	// The complete answer to "who are the top-2 most urgent?" is a
	// distribution over 2-tuple vectors. Exact() disables pruning and
	// coalescing — this table has only 18 possible worlds.
	dist, err := probtopk.TopKDistribution(table, 2, probtopk.Exact())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Top-2 total-score distribution (Figure 3):")
	for _, l := range dist.Lines() {
		fmt.Printf("  score %3.0f  prob %.2f  %s  best vector (%s, p=%.2f)\n",
			l.Score, l.Prob, strings.Repeat("█", int(l.Prob*100)),
			strings.Join(l.Vector, ","), l.VectorProb)
	}

	u, _ := dist.UTopK()
	fmt.Printf("\nU-Top2 answer: (%s), probability %.2f — but its score %v is atypical:\n",
		strings.Join(u.Vector, ","), u.VectorProb, u.Score)
	fmt.Printf("  Pr(actual top-2 scores higher than %v) = %.2f\n", u.Score, dist.TailProb(u.Score))
	fmt.Printf("  expected top-2 score                   = %.1f\n", dist.Mean())
	fmt.Printf("  with prob %.2f the score is %v — nearly double\n\n",
		dist.TailProb(234), 235.0)

	for _, c := range []int{1, 3} {
		lines, cost, err := dist.Typical(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-Typical-Top2 (expected distance %.1f):\n", c, cost)
		for _, l := range lines {
			fmt.Printf("  score %3.0f  vector (%s)  probability %.2f\n",
				l.Score, strings.Join(l.Vector, ","), l.VectorProb)
		}
	}

	// The category-2 baselines answer a different question: marginal tuple
	// probabilities rather than a coherent vector.
	ranks, err := probtopk.UKRanks(table, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nU-kRanks (marginal, may not co-exist):")
	for _, r := range ranks {
		fmt.Printf("  rank %d: %s (probability %.2f)\n", r.Rank, r.ID, r.Prob)
	}
}
