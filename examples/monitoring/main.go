// Monitoring shows the streaming extension: a sliding window over an
// uncertain sensor stream with a continuous top-k score-distribution query —
// the battlefield scenario of the paper's Example 1 turned into a live
// dashboard. Medical staff watch the expected total severity of the top-3
// soldiers over the last W readings, with typical answers on demand.
//
// Run with: go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"probtopk"
)

func main() {
	const window = 24
	const k = 3

	stream, err := probtopk.NewStream(window)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	fmt.Printf("streaming %d-reading window, continuous top-%d severity query\n\n", window, k)
	fmt.Printf("%-6s %-10s %-12s %-12s %s\n", "step", "window", "E[total]", "median", "alert")

	// Simulate 60 sensor readings: most routine, with an escalating incident
	// around steps 30-45. Readings for the same soldier at the same step are
	// mutually exclusive alternatives.
	for step := 0; step < 60; step++ {
		soldier := rng.Intn(12)
		base := 30 + rng.Float64()*40
		if step >= 30 && step <= 45 && soldier < 4 {
			base += 80 + rng.Float64()*60 // the incident
		}
		group := fmt.Sprintf("s%d@%d", soldier, step)
		// Two conflicting estimates from the redundant sensor sets.
		pA := 0.4 + 0.3*rng.Float64()
		if _, err := stream.Push(probtopk.Tuple{
			ID: group + "/a", Group: group, Score: base, Prob: pA,
		}); err != nil {
			log.Fatal(err)
		}
		if _, err := stream.Push(probtopk.Tuple{
			ID: group + "/b", Group: group, Score: base * (0.8 + 0.4*rng.Float64()), Prob: 1 - pA,
		}); err != nil {
			log.Fatal(err)
		}

		if step%5 != 4 {
			continue // report every 5 steps
		}
		dist, err := stream.TopKDistribution(k, nil)
		if err != nil {
			log.Fatal(err)
		}
		alert := ""
		if dist.TailProb(300) > 0.5 {
			alert = "DISPATCH: Pr(total severity > 300) = " +
				fmt.Sprintf("%.2f", dist.TailProb(300))
		}
		fmt.Printf("%-6d %-10d %-12.1f %-12.1f %s\n",
			step, stream.Len(), dist.Mean(), dist.Median(), alert)
	}

	// End-of-run drill-down: the typical answers for the current window.
	dist, err := stream.TopKDistribution(k, nil)
	if err != nil {
		log.Fatal(err)
	}
	lines, cost, err := dist.Typical(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal window 3-Typical-Top%d (expected distance %.1f):\n", k, cost)
	for _, l := range lines {
		fmt.Printf("  total %6.1f  readings %s (p=%.3f)\n",
			l.Score, strings.Join(l.Vector, " "), l.VectorProb)
	}
	mean, max := probtopk.TypicalSpread(lines)
	fmt.Printf("vector spread: mean edit distance %.2f, max %d — %s\n", mean, max,
		spreadVerdict(max, k))
}

func spreadVerdict(max, k int) string {
	if max <= k/2 {
		return "the probable top-k sets largely agree"
	}
	return "the probable top-k sets differ substantially"
}
