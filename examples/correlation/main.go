// Correlation reproduces the paper's §5.4 study on synthetic data: how the
// correlation ρ between tuple scores and probabilities, the score spread σ,
// and the mutual-exclusion group structure reshape the top-k score
// distribution — and how atypical the U-Topk answer is in each regime
// (Figures 13–16).
//
// Run with: go run ./examples/correlation
package main

import (
	"fmt"
	"log"
	"strings"

	"probtopk"
	"probtopk/internal/synth"
)

func main() {
	scenarios := []struct {
		name string
		cfg  synth.Config
	}{
		{"fig13a: independent (rho=0, sigma=60)", synth.Config{N: 300, Seed: 1309}},
		{"fig13b: positive correlation (rho=+0.8)", synth.Config{N: 300, Rho: 0.8, Seed: 1309}},
		{"fig13c: negative correlation (rho=-0.8)", synth.Config{N: 300, Rho: -0.8, Seed: 1309}},
		{"fig14:  wider scores (sigma=100)", synth.Config{N: 300, ScoreStd: 100, Seed: 1309}},
		{"fig15:  wide ME gaps (d in [1,40])", synth.Config{N: 300, GapMin: 1, GapMax: 40, Seed: 1309}},
		{"fig16:  big ME groups (size in [2,10])", synth.Config{N: 300, SizeMin: 2, SizeMax: 10, MEPortion: 0.6, Seed: 1309}},
	}
	const k = 10
	for _, sc := range scenarios {
		table, err := synth.Generate(sc.cfg)
		if err != nil {
			log.Fatal(err)
		}
		dist, err := probtopk.TopKDistribution(table, k, nil)
		if err != nil {
			log.Fatal(err)
		}
		u, _ := dist.UTopK()
		typ, cost, err := dist.Typical(3)
		if err != nil {
			log.Fatal(err)
		}
		var typScores []string
		for _, l := range typ {
			typScores = append(typScores, fmt.Sprintf("%.0f", l.Score))
		}
		fmt.Printf("%s\n", sc.name)
		fmt.Printf("  top-%d score: mean %7.1f  span [%7.1f, %7.1f]\n", k, dist.Mean(), dist.Min(), dist.Max())
		fmt.Printf("  U-Topk: score %7.1f (prob %.4f) — %+.1f vs mean\n", u.Score, u.VectorProb, u.Score-dist.Mean())
		fmt.Printf("  3-Typical scores: %s (expected distance %.1f)\n", strings.Join(typScores, ", "), cost)
		sketch(dist)
		fmt.Println()
	}
}

// sketch prints a compact 40-column density sketch of the distribution.
func sketch(d *probtopk.Distribution) {
	const cols = 40
	width := d.Span() / cols
	if width <= 0 {
		return
	}
	buckets := d.Histogram(width)
	max := 0.0
	for _, b := range buckets {
		if b.Prob > max {
			max = b.Prob
		}
	}
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, b := range buckets {
		sb.WriteRune(glyphs[int(b.Prob/max*float64(len(glyphs)-1))])
	}
	fmt.Printf("  [%s]\n", sb.String())
}
